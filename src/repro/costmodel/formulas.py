"""Classical estimation formulas used by the analytical I/O model.

These are the textbook building blocks every physical-design cost model relies
on: Yao's formula (expected pages touched when picking ``k`` rows at random out
of ``n`` rows stored on ``m`` pages), Cardenas' approximation of the same
quantity, expected numbers of distinct ancestors under hierarchical
containment, and row-to-page conversions.

:func:`cardenas_pages` and :func:`expected_distinct_ancestors` additionally
accept numpy arrays and then evaluate element-wise over the whole batch.  The
array path performs *exactly* the same IEEE-754 double operations in the same
order as the scalar path, so vectorized results are bit-identical to a scalar
loop — the property the batched class-axis cost sweep relies on (and the
parity tests assert).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CostModelError

__all__ = [
    "pages_for_rows",
    "yao_pages",
    "cardenas_pages",
    "expected_distinct_ancestors",
]


def pages_for_rows(rows: float, rows_per_page: int) -> int:
    """Pages needed to store ``rows`` rows at ``rows_per_page`` per page."""
    if rows < 0:
        raise CostModelError(f"rows must be non-negative, got {rows}")
    if rows_per_page <= 0:
        raise CostModelError(f"rows_per_page must be positive, got {rows_per_page}")
    if rows == 0:
        return 0
    return int(math.ceil(rows / rows_per_page))


def _is_array(*values) -> bool:
    """True when any of the values is a numpy array (selects the batch path)."""
    return any(isinstance(value, np.ndarray) for value in values)


def _elementwise_pow(base: np.ndarray, exponent: np.ndarray) -> np.ndarray:
    """``base ** exponent`` per element, through CPython floats.

    NumPy's vectorized ``**`` (SIMD pow) can differ from CPython's ``**`` in
    the last ulp, which would break the bit-parity contract between the
    batched and the scalar cost paths.  The formulas apply pow only O(classes)
    times per candidate, so routing this one transcendental through libm via
    Python floats costs microseconds and buys exact equality.
    """
    return np.array(
        [b ** e for b, e in zip(base.tolist(), exponent.tolist())],
        dtype=np.float64,
    ).reshape(base.shape)


def cardenas_pages(total_rows, total_pages, selected_rows):
    """Cardenas' approximation of pages touched by ``selected_rows`` random rows.

    ``m * (1 - (1 - 1/m)^k)`` — a good approximation of Yao's formula whenever
    the number of rows per page is not tiny, and numerically robust for the
    fractional row/page counts an analytical model manipulates.

    Arguments may be scalars or numpy arrays (broadcast element-wise); array
    results are bit-identical to calling the scalar form per element.
    """
    if _is_array(total_rows, total_pages, selected_rows):
        total_rows, total_pages, selected_rows = np.broadcast_arrays(
            np.asarray(total_rows, dtype=np.float64),
            np.asarray(total_pages, dtype=np.float64),
            np.asarray(selected_rows, dtype=np.float64),
        )
        if (total_rows < 0).any() or (total_pages < 0).any() or (selected_rows < 0).any():
            raise CostModelError("cardenas_pages arguments must be non-negative")
        # Compute only the non-zero entries: no division by zero, and the pow
        # base stays in the scalar path's domain.
        zero = (total_pages == 0) | (total_rows == 0) | (selected_rows == 0)
        result = np.zeros(total_pages.shape, dtype=np.float64)
        active = ~zero
        pages = total_pages[active]
        selected = np.minimum(selected_rows, total_rows)[active]
        miss = _elementwise_pow(1.0 - 1.0 / pages, selected)
        result[active] = pages * (1.0 - miss)
        return result
    if total_rows < 0 or total_pages < 0 or selected_rows < 0:
        raise CostModelError("cardenas_pages arguments must be non-negative")
    if total_pages == 0 or total_rows == 0 or selected_rows == 0:
        return 0.0
    selected = min(selected_rows, total_rows)
    return total_pages * (1.0 - (1.0 - 1.0 / total_pages) ** selected)


def yao_pages(total_rows: int, total_pages: int, selected_rows: int) -> float:
    """Yao's formula: expected pages touched when selecting rows without replacement.

    Falls back to :func:`cardenas_pages` when the exact product would be
    numerically unstable (very large inputs), which keeps the function usable
    for warehouse-scale row counts.
    """
    if total_rows < 0 or total_pages < 0 or selected_rows < 0:
        raise CostModelError("yao_pages arguments must be non-negative")
    if total_pages == 0 or total_rows == 0 or selected_rows == 0:
        return 0.0
    if selected_rows >= total_rows:
        return float(total_pages)
    rows_per_page = total_rows / total_pages
    if total_rows > 10_000_000 or selected_rows > 100_000:
        return cardenas_pages(total_rows, total_pages, selected_rows)
    # Probability that a given page contains none of the selected rows.
    # Computed in log space for robustness.
    log_miss = 0.0
    n = total_rows
    p = rows_per_page
    for i in range(int(selected_rows)):
        numerator = n - p - i
        denominator = n - i
        if numerator <= 0:
            return float(total_pages)
        log_miss += math.log(numerator / denominator)
    return total_pages * (1.0 - math.exp(log_miss))


def expected_distinct_ancestors(selected_values, fine_cardinality, coarse_cardinality):
    """Expected distinct coarse-level ancestors of ``selected_values`` fine-level values.

    Under hierarchical containment each fine value has exactly one ancestor.
    Selecting ``k`` fine values uniformly at random touches
    ``M * (1 - (1 - 1/M)^k)`` coarse values in expectation (``M`` = coarse
    cardinality), the standard balls-into-bins estimate.

    Arguments may be scalars or numpy arrays (broadcast element-wise); array
    results are bit-identical to calling the scalar form per element.
    """
    if _is_array(selected_values, fine_cardinality, coarse_cardinality):
        selected_values, fine, coarse = np.broadcast_arrays(
            np.asarray(selected_values, dtype=np.float64),
            np.asarray(fine_cardinality, dtype=np.float64),
            np.asarray(coarse_cardinality, dtype=np.float64),
        )
        if (fine <= 0).any() or (coarse <= 0).any():
            raise CostModelError("cardinalities must be positive")
        if (coarse > fine).any():
            raise CostModelError(
                "coarse_cardinality cannot exceed fine_cardinality under containment"
            )
        if (selected_values < 0).any():
            raise CostModelError("selected_values must be non-negative")
        selected = np.minimum(selected_values, fine)
        ancestors = coarse * (1.0 - _elementwise_pow(1.0 - 1.0 / coarse, selected))
        return np.where(selected_values == 0, 0.0, ancestors)
    if fine_cardinality <= 0 or coarse_cardinality <= 0:
        raise CostModelError("cardinalities must be positive")
    if coarse_cardinality > fine_cardinality:
        raise CostModelError(
            "coarse_cardinality cannot exceed fine_cardinality under containment"
        )
    if selected_values < 0:
        raise CostModelError("selected_values must be non-negative")
    if selected_values == 0:
        return 0.0
    selected = min(selected_values, float(fine_cardinality))
    return coarse_cardinality * (
        1.0 - (1.0 - 1.0 / coarse_cardinality) ** selected
    )
