"""Analytical I/O cost model (prediction layer, §3.2; stands in for ref. [3]).

For every fragmentation candidate the model predicts

* the I/O *access cost* (device busy time — the throughput-oriented metric), and
* the I/O *response time* (elapsed time exploiting parallel disks),

for each query class of the workload and aggregated over the weighted mix.
The twofold metric feeds the advisor's ranking heuristic.
"""

from repro.costmodel.formulas import (
    cardenas_pages,
    expected_distinct_ancestors,
    pages_for_rows,
    yao_pages,
)
from repro.costmodel.access import (
    AccessStructure,
    QueryAccessProfile,
    compute_access_structure,
    estimate_access,
)
from repro.costmodel.model import (
    IOCostModel,
    QueryCost,
    WorkloadEvaluation,
    prefetch_setting_from_runs,
    resolve_prefetch_setting,
)
from repro.costmodel.batch import (
    AccessProfileBatch,
    AccessStructureBatch,
    compute_access_structure_batch,
    estimate_access_batch,
    evaluate_workload_batch,
    resolve_prefetch_setting_batch,
)

__all__ = [
    "yao_pages",
    "cardenas_pages",
    "pages_for_rows",
    "expected_distinct_ancestors",
    "AccessStructure",
    "QueryAccessProfile",
    "compute_access_structure",
    "estimate_access",
    "AccessProfileBatch",
    "AccessStructureBatch",
    "compute_access_structure_batch",
    "estimate_access_batch",
    "evaluate_workload_batch",
    "resolve_prefetch_setting_batch",
    "IOCostModel",
    "QueryCost",
    "WorkloadEvaluation",
    "prefetch_setting_from_runs",
    "resolve_prefetch_setting",
]
