"""Analytical I/O cost model (prediction layer, §3.2; stands in for ref. [3]).

For every fragmentation candidate the model predicts

* the I/O *access cost* (device busy time — the throughput-oriented metric), and
* the I/O *response time* (elapsed time exploiting parallel disks),

for each query class of the workload and aggregated over the weighted mix.
The twofold metric feeds the advisor's ranking heuristic.
"""

from repro.costmodel.formulas import (
    cardenas_pages,
    expected_distinct_ancestors,
    pages_for_rows,
    yao_pages,
)
from repro.costmodel.access import (
    AccessStructure,
    QueryAccessProfile,
    compute_access_structure,
    estimate_access,
)
from repro.costmodel.model import (
    PROFILE_FLOAT_FIELDS,
    EvaluationColumns,
    IOCostModel,
    QueryCost,
    WorkloadEvaluation,
    prefetch_setting_from_runs,
    resolve_prefetch_setting,
)
from repro.costmodel.batch import (
    AccessProfileBatch,
    AccessProfileBatch2D,
    AccessStructureBatch,
    AccessStructureBatch2D,
    compute_access_structure_batch,
    compute_access_structure_batch_candidates,
    estimate_access_batch,
    estimate_access_batch_candidates,
    evaluate_workload_batch,
    evaluate_workload_batch_candidates,
    resolve_prefetch_setting_batch,
    resolve_prefetch_settings_batch_candidates,
)

__all__ = [
    "yao_pages",
    "cardenas_pages",
    "pages_for_rows",
    "expected_distinct_ancestors",
    "AccessStructure",
    "QueryAccessProfile",
    "compute_access_structure",
    "estimate_access",
    "AccessProfileBatch",
    "AccessProfileBatch2D",
    "AccessStructureBatch",
    "AccessStructureBatch2D",
    "compute_access_structure_batch",
    "compute_access_structure_batch_candidates",
    "estimate_access_batch",
    "estimate_access_batch_candidates",
    "evaluate_workload_batch",
    "evaluate_workload_batch_candidates",
    "resolve_prefetch_setting_batch",
    "resolve_prefetch_settings_batch_candidates",
    "EvaluationColumns",
    "PROFILE_FLOAT_FIELDS",
    "IOCostModel",
    "QueryCost",
    "WorkloadEvaluation",
    "prefetch_setting_from_runs",
    "resolve_prefetch_setting",
]
