"""Relational star schema model (WARLOCK input layer, §2 / §3.1).

A star schema consists of denormalized, hierarchically organized dimension
tables and one or more fact tables.  Each dimension level is represented by a
dimension attribute; fact tables hold measure attributes and refer to the
dimensions by foreign keys.
"""

from repro.schema.star import (
    Dimension,
    FactTable,
    Level,
    Measure,
    StarSchema,
)
from repro.schema.validation import validate_schema

__all__ = [
    "Level",
    "Dimension",
    "Measure",
    "FactTable",
    "StarSchema",
    "validate_schema",
]
