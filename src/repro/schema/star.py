"""Star schema objects: levels, dimensions, measures, fact tables, schemas.

The model mirrors the schema description WARLOCK's input layer asks the DBA
for: dimension hierarchies with per-level cardinalities, fact-table row counts
and row sizes, and optional Zipf-like skew at the bottom level of a dimension.

Hierarchies are strict: every level is a refinement of the level above it, so
cardinalities must be non-decreasing from the top (coarsest) level to the
bottom (finest) level, and each bottom-level value has exactly one ancestor at
every coarser level.  This containment property is what makes multi-dimensional
hierarchical fragmentation (MDHF) able to confine star-query work to a subset
of the fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.skew import SkewSpec

__all__ = ["Level", "Dimension", "Measure", "FactTable", "StarSchema"]


def _require_identifier(name: str, what: str) -> None:
    if not isinstance(name, str) or not name or not name.strip():
        raise SchemaError(f"{what} name must be a non-empty string, got {name!r}")


@dataclass(frozen=True)
class Level:
    """One level of a dimension hierarchy.

    Parameters
    ----------
    name:
        Attribute name of the level (for instance ``"month"``).
    cardinality:
        Number of distinct values at this level across the whole dimension.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        _require_identifier(self.name, "level")
        if not isinstance(self.cardinality, int) or isinstance(self.cardinality, bool):
            raise SchemaError(
                f"cardinality of level {self.name!r} must be an int, "
                f"got {type(self.cardinality).__name__}"
            )
        if self.cardinality <= 0:
            raise SchemaError(
                f"cardinality of level {self.name!r} must be positive, "
                f"got {self.cardinality}"
            )


@dataclass(frozen=True)
class Dimension:
    """A denormalized, hierarchically organized dimension table.

    ``levels`` are ordered from the coarsest (top) to the finest (bottom) level,
    e.g. ``year -> quarter -> month -> day`` for a time dimension.  Skew, when
    present, applies to the bottom level per the WARLOCK input model.
    """

    name: str
    levels: Tuple[Level, ...]
    skew: SkewSpec = field(default_factory=SkewSpec.none)
    row_size_bytes: int = 64

    def __init__(
        self,
        name: str,
        levels: Sequence[Level],
        skew: Optional[SkewSpec] = None,
        row_size_bytes: int = 64,
    ) -> None:
        _require_identifier(name, "dimension")
        levels = tuple(levels)
        if not levels:
            raise SchemaError(f"dimension {name!r} must define at least one level")
        seen = set()
        for level in levels:
            if not isinstance(level, Level):
                raise SchemaError(
                    f"dimension {name!r}: levels must be Level instances, "
                    f"got {type(level).__name__}"
                )
            if level.name in seen:
                raise SchemaError(
                    f"dimension {name!r}: duplicate level name {level.name!r}"
                )
            seen.add(level.name)
        for upper, lower in zip(levels, levels[1:]):
            if lower.cardinality < upper.cardinality:
                raise SchemaError(
                    f"dimension {name!r}: hierarchy cardinalities must be "
                    f"non-decreasing from top to bottom, but level "
                    f"{lower.name!r} ({lower.cardinality}) is smaller than "
                    f"{upper.name!r} ({upper.cardinality})"
                )
        if row_size_bytes <= 0:
            raise SchemaError(
                f"dimension {name!r}: row_size_bytes must be positive, "
                f"got {row_size_bytes}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "skew", skew if skew is not None else SkewSpec.none())
        object.__setattr__(self, "row_size_bytes", row_size_bytes)

    # -- navigation helpers -------------------------------------------------

    @property
    def level_names(self) -> Tuple[str, ...]:
        """Names of the levels, coarsest first."""
        return tuple(level.name for level in self.levels)

    @property
    def top_level(self) -> Level:
        """The coarsest level of the hierarchy."""
        return self.levels[0]

    @property
    def bottom_level(self) -> Level:
        """The finest level of the hierarchy (foreign key target of the fact table)."""
        return self.levels[-1]

    @property
    def cardinality(self) -> int:
        """Cardinality of the bottom level, i.e. the dimension's row count."""
        return self.bottom_level.cardinality

    def level(self, name: str) -> Level:
        """Return the level called ``name``.

        Raises
        ------
        SchemaError
            If no level of that name exists in the dimension.
        """
        for level in self.levels:
            if level.name == name:
                return level
        raise SchemaError(
            f"dimension {self.name!r} has no level {name!r}; "
            f"known levels: {', '.join(self.level_names)}"
        )

    def has_level(self, name: str) -> bool:
        """True when the dimension contains a level called ``name``."""
        return any(level.name == name for level in self.levels)

    def level_index(self, name: str) -> int:
        """Index of the level (0 = coarsest)."""
        for index, level in enumerate(self.levels):
            if level.name == name:
                return index
        raise SchemaError(f"dimension {self.name!r} has no level {name!r}")

    def is_coarser_or_equal(self, level_a: str, level_b: str) -> bool:
        """True when ``level_a`` is at or above ``level_b`` in the hierarchy."""
        return self.level_index(level_a) <= self.level_index(level_b)

    def fanout(self, coarse_level: str, fine_level: str) -> float:
        """Average number of ``fine_level`` values per ``coarse_level`` value.

        Raises
        ------
        SchemaError
            If ``coarse_level`` is actually finer than ``fine_level``.
        """
        coarse = self.level(coarse_level)
        fine = self.level(fine_level)
        if not self.is_coarser_or_equal(coarse_level, fine_level):
            raise SchemaError(
                f"dimension {self.name!r}: {coarse_level!r} is finer than "
                f"{fine_level!r}; fanout is only defined top-down"
            )
        return fine.cardinality / coarse.cardinality

    def size_bytes(self) -> int:
        """Approximate storage footprint of the denormalized dimension table."""
        return self.cardinality * self.row_size_bytes

    def __iter__(self) -> Iterator[Level]:
        return iter(self.levels)


@dataclass(frozen=True)
class Measure:
    """A measure attribute of a fact table (aggregation target)."""

    name: str
    size_bytes: int = 8

    def __post_init__(self) -> None:
        _require_identifier(self.name, "measure")
        if self.size_bytes <= 0:
            raise SchemaError(
                f"measure {self.name!r}: size_bytes must be positive, "
                f"got {self.size_bytes}"
            )


@dataclass(frozen=True)
class FactTable:
    """A fact table referencing the schema's dimensions by foreign key.

    ``row_size_bytes`` covers the foreign keys plus the measures; it is used to
    translate row counts into database pages.
    """

    name: str
    row_count: int
    row_size_bytes: int
    dimension_names: Tuple[str, ...]
    measures: Tuple[Measure, ...] = ()

    def __init__(
        self,
        name: str,
        row_count: int,
        row_size_bytes: int,
        dimension_names: Sequence[str],
        measures: Sequence[Measure] = (),
    ) -> None:
        _require_identifier(name, "fact table")
        if row_count <= 0:
            raise SchemaError(
                f"fact table {name!r}: row_count must be positive, got {row_count}"
            )
        if row_size_bytes <= 0:
            raise SchemaError(
                f"fact table {name!r}: row_size_bytes must be positive, "
                f"got {row_size_bytes}"
            )
        dimension_names = tuple(dimension_names)
        if not dimension_names:
            raise SchemaError(
                f"fact table {name!r} must reference at least one dimension"
            )
        if len(set(dimension_names)) != len(dimension_names):
            raise SchemaError(
                f"fact table {name!r}: duplicate dimension references "
                f"{dimension_names}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "row_count", row_count)
        object.__setattr__(self, "row_size_bytes", row_size_bytes)
        object.__setattr__(self, "dimension_names", dimension_names)
        object.__setattr__(self, "measures", tuple(measures))

    def size_bytes(self) -> int:
        """Total raw size of the fact table."""
        return self.row_count * self.row_size_bytes

    def pages(self, page_size_bytes: int) -> int:
        """Number of database pages the fact table occupies."""
        if page_size_bytes <= 0:
            raise SchemaError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        rows_per_page = max(1, page_size_bytes // self.row_size_bytes)
        return -(-self.row_count // rows_per_page)

    def rows_per_page(self, page_size_bytes: int) -> int:
        """Blocking factor: fact rows per database page."""
        if page_size_bytes <= 0:
            raise SchemaError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        return max(1, page_size_bytes // self.row_size_bytes)


@dataclass(frozen=True)
class StarSchema:
    """A star schema: a set of dimensions plus one or more fact tables."""

    name: str
    dimensions: Tuple[Dimension, ...]
    fact_tables: Tuple[FactTable, ...]

    def __init__(
        self,
        name: str,
        dimensions: Sequence[Dimension],
        fact_tables: Sequence[FactTable],
    ) -> None:
        _require_identifier(name, "schema")
        dimensions = tuple(dimensions)
        fact_tables = tuple(fact_tables)
        if not dimensions:
            raise SchemaError(f"schema {name!r} must define at least one dimension")
        if not fact_tables:
            raise SchemaError(f"schema {name!r} must define at least one fact table")
        dim_names = [d.name for d in dimensions]
        if len(set(dim_names)) != len(dim_names):
            raise SchemaError(f"schema {name!r}: duplicate dimension names")
        fact_names = [f.name for f in fact_tables]
        if len(set(fact_names)) != len(fact_names):
            raise SchemaError(f"schema {name!r}: duplicate fact table names")
        known = set(dim_names)
        for fact in fact_tables:
            missing = [d for d in fact.dimension_names if d not in known]
            if missing:
                raise SchemaError(
                    f"fact table {fact.name!r} references unknown dimensions: "
                    f"{', '.join(missing)}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dimensions", dimensions)
        object.__setattr__(self, "fact_tables", fact_tables)

    # -- navigation helpers -------------------------------------------------

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        """Names of all dimensions in declaration order."""
        return tuple(d.name for d in self.dimensions)

    def dimension(self, name: str) -> Dimension:
        """Return the dimension called ``name``."""
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise SchemaError(
            f"schema {self.name!r} has no dimension {name!r}; "
            f"known dimensions: {', '.join(self.dimension_names)}"
        )

    def has_dimension(self, name: str) -> bool:
        """True when the schema contains a dimension called ``name``."""
        return any(d.name == name for d in self.dimensions)

    def fact_table(self, name: Optional[str] = None) -> FactTable:
        """Return the named fact table, or the first one when ``name`` is omitted."""
        if name is None:
            return self.fact_tables[0]
        for fact in self.fact_tables:
            if fact.name == name:
                return fact
        raise SchemaError(
            f"schema {self.name!r} has no fact table {name!r}; known fact "
            f"tables: {', '.join(f.name for f in self.fact_tables)}"
        )

    def dimensions_of(self, fact: FactTable) -> Tuple[Dimension, ...]:
        """The dimension objects referenced by ``fact``, in reference order."""
        return tuple(self.dimension(name) for name in fact.dimension_names)

    def level_cardinality(self, dimension_name: str, level_name: str) -> int:
        """Cardinality of ``dimension.level``; convenience for cost formulas."""
        return self.dimension(dimension_name).level(level_name).cardinality

    def with_skew(self, skew: "dict[str, float]") -> "StarSchema":
        """A copy of the schema with the given per-dimension Zipf thetas.

        ``skew`` maps dimension names to the new bottom-level Zipf theta
        (``0.0`` removes the skew); unnamed dimensions are kept as they are.
        This is the schema-side "what-if" edit of the paper's interactive
        tuning session (:meth:`repro.api.AdvisorSession.with_delta`).
        """
        unknown = [name for name in skew if not self.has_dimension(name)]
        if unknown:
            raise SchemaError(
                f"schema {self.name!r} has no dimension(s) "
                f"{', '.join(map(repr, unknown))}; known dimensions: "
                f"{', '.join(self.dimension_names)}"
            )
        dimensions = tuple(
            Dimension(
                name=dimension.name,
                levels=dimension.levels,
                skew=SkewSpec(theta=float(skew[dimension.name])),
                row_size_bytes=dimension.row_size_bytes,
            )
            if dimension.name in skew
            else dimension
            for dimension in self.dimensions
        )
        return StarSchema(
            name=self.name, dimensions=dimensions, fact_tables=self.fact_tables
        )

    def total_size_bytes(self) -> int:
        """Raw size of all fact tables plus all dimension tables."""
        fact_bytes = sum(fact.size_bytes() for fact in self.fact_tables)
        dim_bytes = sum(dim.size_bytes() for dim in self.dimensions)
        return fact_bytes + dim_bytes

    def describe(self) -> str:
        """One-paragraph human-readable description used by reports and the CLI."""
        lines = [f"Star schema {self.name!r}"]
        for dimension in self.dimensions:
            hierarchy = " > ".join(
                f"{level.name}({level.cardinality})" for level in dimension.levels
            )
            skew = f", zipf theta={dimension.skew.theta}" if dimension.skew.is_skewed else ""
            lines.append(f"  dimension {dimension.name}: {hierarchy}{skew}")
        for fact in self.fact_tables:
            lines.append(
                f"  fact table {fact.name}: {fact.row_count:,} rows x "
                f"{fact.row_size_bytes} B, dimensions "
                f"{', '.join(fact.dimension_names)}"
            )
        return "\n".join(lines)
