"""Cross-object validation of star schema definitions.

The dataclass constructors in :mod:`repro.schema.star` already enforce local
invariants (positive cardinalities, non-decreasing hierarchies, ...).  This
module adds the cross-cutting checks WARLOCK's input layer performs before a
schema is handed to the prediction layer, and returns human-readable warnings
for conditions that are legal but usually indicate a mis-specified schema.
"""

from __future__ import annotations

from typing import List

from repro.errors import SchemaError
from repro.schema.star import StarSchema

__all__ = ["validate_schema"]

#: A fact table whose bottom-level dimension cardinality product is smaller than
#: its row count cannot distribute rows injectively; that is fine (facts repeat
#: dimension combinations), but the reverse by a huge margin is suspicious.
_SPARSITY_WARNING_FACTOR = 1_000_000.0


def validate_schema(schema: StarSchema, strict: bool = False) -> List[str]:
    """Validate ``schema`` and return a list of warning strings.

    Parameters
    ----------
    schema:
        The schema to validate.
    strict:
        When true, warnings are escalated to :class:`~repro.errors.SchemaError`.

    Returns
    -------
    list of str
        Human-readable warnings (empty when the schema looks clean).

    Raises
    ------
    SchemaError
        For outright inconsistencies, or for warnings when ``strict`` is set.
    """
    warnings: List[str] = []

    for fact in schema.fact_tables:
        dimensions = schema.dimensions_of(fact)

        combination_space = 1.0
        for dimension in dimensions:
            combination_space *= dimension.cardinality

        if combination_space > fact.row_count * _SPARSITY_WARNING_FACTOR:
            warnings.append(
                f"fact table {fact.name!r}: the dimension value space "
                f"({combination_space:.3g} combinations) exceeds the row count "
                f"({fact.row_count:,}) by more than a factor of "
                f"{_SPARSITY_WARNING_FACTOR:.0e}; fragment size estimates will "
                f"be extremely sparse"
            )

        key_bytes = 8 * len(dimensions)
        if fact.row_size_bytes < key_bytes:
            warnings.append(
                f"fact table {fact.name!r}: row_size_bytes "
                f"({fact.row_size_bytes}) is smaller than the space needed for "
                f"{len(dimensions)} foreign keys (~{key_bytes} bytes)"
            )

    for dimension in schema.dimensions:
        if dimension.top_level.cardinality == dimension.bottom_level.cardinality and (
            len(dimension.levels) > 1
        ):
            warnings.append(
                f"dimension {dimension.name!r}: top and bottom levels have the "
                f"same cardinality; the hierarchy is degenerate"
            )
        if dimension.bottom_level.cardinality == 1:
            warnings.append(
                f"dimension {dimension.name!r}: bottom level has cardinality 1; "
                f"it cannot be used for fragmentation or bitmap selection"
            )

    referenced = {name for fact in schema.fact_tables for name in fact.dimension_names}
    unreferenced = [d.name for d in schema.dimensions if d.name not in referenced]
    if unreferenced:
        warnings.append(
            "dimensions not referenced by any fact table: " + ", ".join(unreferenced)
        )

    if strict and warnings:
        raise SchemaError(
            f"schema {schema.name!r} failed strict validation:\n  - "
            + "\n  - ".join(warnings)
        )
    return warnings
