"""Exception hierarchy for the WARLOCK reproduction.

All exceptions raised by the library derive from :class:`WarlockError` so that
callers embedding the advisor (for instance a GUI or a web service, as the
original Java tool did) can catch a single base class at the integration
boundary while still being able to distinguish configuration problems from
modelling problems.
"""

from __future__ import annotations

__all__ = [
    "WarlockError",
    "SchemaError",
    "WorkloadError",
    "FragmentationError",
    "AllocationError",
    "CostModelError",
    "BitmapError",
    "StorageError",
    "AdvisorError",
    "EvaluationCancelled",
    "FabricError",
    "SimulationError",
    "ReportError",
    "ServiceError",
]


class WarlockError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(WarlockError):
    """Raised for invalid star schema definitions (hierarchies, cardinalities...)."""


class WorkloadError(WarlockError):
    """Raised for invalid query classes or query mixes."""


class FragmentationError(WarlockError):
    """Raised for invalid fragmentation specifications or layouts."""


class AllocationError(WarlockError):
    """Raised when a disk allocation cannot be produced or is inconsistent."""


class CostModelError(WarlockError):
    """Raised when the analytical I/O model receives inconsistent inputs."""


class BitmapError(WarlockError):
    """Raised for invalid bitmap index configurations."""


class StorageError(WarlockError):
    """Raised for invalid disk or database system parameters."""


class AdvisorError(WarlockError):
    """Raised when the advisor pipeline cannot produce a recommendation."""


class EvaluationCancelled(AdvisorError):
    """Raised when a candidate sweep is cancelled at a chunk boundary.

    Everything evaluated before the cancel — including cache entries, which
    are content-addressed functions of their inputs — remains valid; retrying
    the request resumes warm.
    """


class FabricError(AdvisorError):
    """Raised by the distributed sweep fabric (:mod:`repro.fabric`).

    Covers the wire protocol (malformed or corrupted frames), fault-plan
    parsing and coordinator/worker lifecycle errors.  A fabric failure during
    a sweep is never fatal to the evaluation: the engine catches it and
    degrades to the local path.
    """


class SimulationError(WarlockError):
    """Raised by the event-driven disk simulator on inconsistent input."""


class ReportError(WarlockError):
    """Raised by the analysis/report layer."""


class ServiceError(WarlockError):
    """Raised by the HTTP service layer (:mod:`repro.service`).

    Carries the HTTP ``status`` the front end should answer with — 404 for an
    unknown warehouse, 503 for a saturated request queue, 400 for a malformed
    request body, and so on — so the server maps library errors to wire
    responses in one place.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
