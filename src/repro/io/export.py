"""Exporters: recommendations and candidates as plain dictionaries.

The exported structures are JSON-serializable and stable across versions, so
downstream tooling (dashboards, regression baselines, notebooks) can consume
the advisor's output without importing the library's classes.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis import build_database_statistics, build_query_statistics
from repro.core import FragmentationCandidate, Recommendation

__all__ = ["candidate_to_dict", "recommendation_to_dict"]


def candidate_to_dict(
    candidate: FragmentationCandidate, include_allocation: bool = False
) -> Dict[str, Any]:
    """Plain-dict form of one evaluated candidate.

    Parameters
    ----------
    candidate:
        The candidate to export.
    include_allocation:
        When true, the per-fragment disk assignment is included (can be large
        for fine fragmentations, hence opt-in).
    """
    payload: Dict[str, Any] = {
        "fragmentation": candidate.label,
        "attributes": [
            {"dimension": attribute.dimension, "level": attribute.level}
            for attribute in candidate.spec.attributes
        ],
        "metrics": candidate.summary(),
        "database_statistics": build_database_statistics(candidate).as_dict(),
        "per_class": candidate.evaluation.as_dict(),
        "bitmap_scheme": [
            {
                "dimension": index.dimension,
                "level": index.level,
                "type": index.bitmap_type.value,
                "cardinality": index.cardinality,
                "bits_per_row": index.storage_bits_per_row,
            }
            for index in candidate.bitmap_scheme
        ],
        "prefetch": {
            "fact_pages": candidate.prefetch.fact_pages,
            "bitmap_pages": candidate.prefetch.bitmap_pages,
            "fact_policy": candidate.prefetch.fact_policy.value,
            "bitmap_policy": candidate.prefetch.bitmap_policy.value,
        },
        "allocation": candidate.allocation.occupancy_summary(),
    }
    if include_allocation:
        payload["allocation"]["disk_of_fragment"] = (
            candidate.allocation.disk_of_fragment.tolist()
        )
    return payload


def recommendation_to_dict(
    recommendation: Recommendation,
    include_all_candidates: bool = False,
    include_query_statistics: bool = True,
) -> Dict[str, Any]:
    """Plain-dict form of a full recommendation.

    Parameters
    ----------
    recommendation:
        The advisor output to export.
    include_all_candidates:
        Include every evaluated candidate's summary (not just the ranked ones).
    include_query_statistics:
        Include the per-query-class statistics of the winning candidate.
    """
    payload: Dict[str, Any] = {
        "schema": recommendation.schema.name,
        "system": recommendation.system.describe(),
        "config": {
            "top_fraction": recommendation.config.top_fraction,
            "top_candidates": recommendation.config.top_candidates,
            "max_fragments": recommendation.config.max_fragments,
        },
        "candidate_space": {
            "considered": recommendation.exclusion_report.considered,
            "excluded": recommendation.exclusion_report.excluded_count,
            "evaluated": recommendation.exclusion_report.surviving_count,
        },
        "ranked": [
            {
                "final_rank": ranked.final_rank,
                "io_rank": ranked.io_rank,
                **candidate_to_dict(ranked.candidate),
            }
            for ranked in recommendation.ranked
        ],
    }
    if include_query_statistics and recommendation.ranked:
        payload["best_query_statistics"] = [
            statistic.as_dict()
            for statistic in build_query_statistics(
                recommendation.best, recommendation.workload
            )
        ]
    if include_all_candidates:
        payload["evaluated"] = [
            candidate.summary() for candidate in recommendation.evaluated
        ]
    return payload
