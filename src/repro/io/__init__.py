"""Configuration and result (de)serialization.

The original tool persisted nothing beyond the GUI session; a library needs a
plain, documented interchange format.  This package provides:

* a JSON-friendly configuration format mirroring the input layer of the paper
  (star schema, DBS & disk parameters, weighted query mix), used by the CLI's
  ``--config`` option and by embedding applications, and
* exporters that turn a recommendation into plain dictionaries for downstream
  tooling (dashboards, notebooks, regression baselines).
"""

from repro.io.config import (
    engine_section_from_dict,
    example_config,
    load_config_file,
    load_engine_section,
    parse_config,
    schema_from_dict,
    schema_to_dict,
    system_from_dict,
    system_to_dict,
    workload_from_list,
    workload_to_list,
)
from repro.io.export import candidate_to_dict, recommendation_to_dict

__all__ = [
    "engine_section_from_dict",
    "example_config",
    "parse_config",
    "load_config_file",
    "load_engine_section",
    "schema_from_dict",
    "schema_to_dict",
    "system_from_dict",
    "system_to_dict",
    "workload_from_list",
    "workload_to_list",
    "candidate_to_dict",
    "recommendation_to_dict",
]
