"""JSON-friendly configuration format for the input layer.

The format mirrors the three input blocks of the paper (§3.1):

.. code-block:: json

    {
      "schema":   { "name": "...", "dimensions": [...], "fact_tables": [...] },
      "system":   { "num_disks": 64, "page_size_bytes": 8192, "disk": {...}, ... },
      "workload": [ { "name": "...", "weight": 3, "restrictions": [["time", "month", 1]] } ]
    }

Every ``*_to_*`` / ``*_from_*`` pair round-trips, so configurations can be
generated programmatically, saved, edited by hand and re-loaded.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SchemaError, StorageError, WorkloadError
from repro.schema import Dimension, FactTable, Level, Measure, StarSchema
from repro.skew import SkewSpec
from repro.storage import DiskParameters, SystemParameters
from repro.workload import DimensionRestriction, QueryClass, QueryMix

__all__ = [
    "schema_from_dict",
    "schema_to_dict",
    "system_from_dict",
    "system_to_dict",
    "workload_from_list",
    "workload_to_list",
    "engine_section_from_dict",
    "load_engine_section",
    "parse_config",
    "load_config_file",
    "example_config",
]


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

def schema_from_dict(config: Dict[str, Any]) -> StarSchema:
    """Build a :class:`StarSchema` from its dictionary form."""
    try:
        dimension_configs = config["dimensions"]
        fact_configs = config["fact_tables"]
    except KeyError as error:
        raise SchemaError(f"schema config is missing the {error.args[0]!r} block") from error

    dimensions = []
    for dim in dimension_configs:
        dimensions.append(
            Dimension(
                name=dim["name"],
                levels=[Level(str(name), int(card)) for name, card in dim["levels"]],
                skew=SkewSpec(theta=float(dim.get("zipf_theta", 0.0))),
                row_size_bytes=int(dim.get("row_size_bytes", 64)),
            )
        )
    fact_tables = []
    for fact in fact_configs:
        fact_tables.append(
            FactTable(
                name=fact["name"],
                row_count=int(fact["row_count"]),
                row_size_bytes=int(fact["row_size_bytes"]),
                dimension_names=tuple(fact["dimensions"]),
                measures=tuple(
                    Measure(str(name), int(size)) for name, size in fact.get("measures", [])
                ),
            )
        )
    return StarSchema(
        name=config.get("name", "configured_schema"),
        dimensions=dimensions,
        fact_tables=fact_tables,
    )


def schema_to_dict(schema: StarSchema) -> Dict[str, Any]:
    """Dictionary form of a :class:`StarSchema` (inverse of :func:`schema_from_dict`)."""
    return {
        "name": schema.name,
        "dimensions": [
            {
                "name": dimension.name,
                "levels": [[level.name, level.cardinality] for level in dimension.levels],
                "zipf_theta": dimension.skew.theta,
                "row_size_bytes": dimension.row_size_bytes,
            }
            for dimension in schema.dimensions
        ],
        "fact_tables": [
            {
                "name": fact.name,
                "row_count": fact.row_count,
                "row_size_bytes": fact.row_size_bytes,
                "dimensions": list(fact.dimension_names),
                "measures": [[measure.name, measure.size_bytes] for measure in fact.measures],
            }
            for fact in schema.fact_tables
        ],
    }


# ---------------------------------------------------------------------------
# System
# ---------------------------------------------------------------------------

def system_from_dict(config: Dict[str, Any]) -> SystemParameters:
    """Build :class:`SystemParameters` from its dictionary form."""
    if not isinstance(config, dict):
        raise StorageError("system config must be a JSON object")
    disk_config = config.get("disk", {})
    disk = DiskParameters(
        capacity_gb=float(disk_config.get("capacity_gb", 36.0)),
        avg_seek_ms=float(disk_config.get("avg_seek_ms", 6.0)),
        avg_rotational_ms=float(disk_config.get("avg_rotational_ms", 3.0)),
        transfer_mb_per_s=float(disk_config.get("transfer_mb_per_s", 25.0)),
    )
    return SystemParameters(
        num_disks=int(config.get("num_disks", 64)),
        disk=disk,
        page_size_bytes=int(config.get("page_size_bytes", 8192)),
        architecture=config.get("architecture", "shared_disk"),
        num_nodes=config.get("num_nodes"),
        prefetch_pages_fact=config.get("prefetch_pages_fact", "auto"),
        prefetch_pages_bitmap=config.get("prefetch_pages_bitmap", "auto"),
        coordination_overhead_ms=config.get("coordination_overhead_ms"),
    )


def system_to_dict(system: SystemParameters) -> Dict[str, Any]:
    """Dictionary form of :class:`SystemParameters`."""
    payload: Dict[str, Any] = {
        "num_disks": system.num_disks,
        "page_size_bytes": system.page_size_bytes,
        "architecture": system.architecture.value,
        "disk": {
            "capacity_gb": system.disk.capacity_gb,
            "avg_seek_ms": system.disk.avg_seek_ms,
            "avg_rotational_ms": system.disk.avg_rotational_ms,
            "transfer_mb_per_s": system.disk.transfer_mb_per_s,
        },
        "prefetch_pages_fact": system.prefetch_pages_fact,
        "prefetch_pages_bitmap": system.prefetch_pages_bitmap,
    }
    if system.num_nodes is not None:
        payload["num_nodes"] = system.num_nodes
    if system.coordination_overhead_ms is not None:
        payload["coordination_overhead_ms"] = system.coordination_overhead_ms
    return payload


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

def workload_from_list(config: Sequence[Dict[str, Any]]) -> QueryMix:
    """Build a :class:`QueryMix` from its list-of-dicts form."""
    if not config:
        raise WorkloadError("workload config must contain at least one query class")
    classes = []
    for entry in config:
        restrictions = []
        for restriction in entry.get("restrictions", []):
            if len(restriction) < 2:
                raise WorkloadError(
                    f"restriction {restriction!r} must be [dimension, level] or "
                    f"[dimension, level, value_count]"
                )
            dimension, level = restriction[0], restriction[1]
            value_count = int(restriction[2]) if len(restriction) > 2 else 1
            restrictions.append(
                DimensionRestriction(str(dimension), str(level), value_count)
            )
        classes.append(
            QueryClass(
                name=entry["name"],
                restrictions=restrictions,
                weight=float(entry.get("weight", 1.0)),
                fact_table=entry.get("fact_table"),
            )
        )
    return QueryMix(classes)


def workload_to_list(workload: QueryMix) -> List[Dict[str, Any]]:
    """List-of-dicts form of a :class:`QueryMix`."""
    payload = []
    for query_class in workload:
        entry: Dict[str, Any] = {
            "name": query_class.name,
            "weight": query_class.weight,
            "restrictions": [
                [restriction.dimension, restriction.level, restriction.value_count]
                for restriction in query_class.restrictions
            ],
        }
        if query_class.fact_table is not None:
            entry["fact_table"] = query_class.fact_table
        payload.append(entry)
    return payload


# ---------------------------------------------------------------------------
# Engine options
# ---------------------------------------------------------------------------

def engine_section_from_dict(raw: Dict[str, Any]) -> Dict[str, Any]:
    """The validated ``"engine"`` block of a configuration dictionary.

    The block supplies defaults for the execution options
    (:class:`repro.api.EngineOptions` fields: ``jobs``, ``vectorize``,
    ``cache``, ``cache_dir``, ``persist``); the CLI resolves them below
    explicit flags and the environment.  Returns the overrides as a plain
    dict (empty when the block is absent); unknown keys or invalid values are
    an error — a typo must not silently fall back to a default.
    """
    # Imported lazily: repro.api sits above the io layer in the import graph.
    from repro.api.options import EngineOptions

    section = raw.get("engine", {})
    if not section:
        return {}
    EngineOptions.from_dict(section)  # validates keys and values
    return dict(section)


def load_engine_section(path: str) -> Dict[str, Any]:
    """Load and validate the ``"engine"`` block of a JSON configuration file."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    return engine_section_from_dict(raw)


# ---------------------------------------------------------------------------
# Whole configurations
# ---------------------------------------------------------------------------

def parse_config(raw: Dict[str, Any]) -> Tuple[StarSchema, QueryMix, SystemParameters]:
    """Parse a complete configuration dictionary into the three input blocks."""
    if "schema" not in raw:
        raise SchemaError("configuration is missing the 'schema' block")
    if "workload" not in raw:
        raise WorkloadError("configuration is missing the 'workload' block")
    schema = schema_from_dict(raw["schema"])
    system = system_from_dict(raw.get("system", {}))
    workload = workload_from_list(raw["workload"])
    workload.validate(schema)
    return schema, workload, system


def load_config_file(path: str) -> Tuple[StarSchema, QueryMix, SystemParameters]:
    """Load and parse a JSON configuration file."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    return parse_config(raw)


def example_config() -> Dict[str, Any]:
    """A small, valid configuration template (printed by ``warlock example-config``)."""
    return {
        "schema": {
            "name": "my_warehouse",
            "dimensions": [
                {
                    "name": "time",
                    "levels": [["year", 3], ["month", 36]],
                    "zipf_theta": 0.0,
                },
                {
                    "name": "product",
                    "levels": [["group", 50], ["item", 5000]],
                    "zipf_theta": 0.5,
                },
            ],
            "fact_tables": [
                {
                    "name": "sales",
                    "row_count": 10000000,
                    "row_size_bytes": 64,
                    "dimensions": ["time", "product"],
                    "measures": [["revenue", 8]],
                }
            ],
        },
        "system": {
            "num_disks": 32,
            "page_size_bytes": 8192,
            "architecture": "shared_disk",
            "disk": {
                "capacity_gb": 36.0,
                "avg_seek_ms": 6.0,
                "avg_rotational_ms": 3.0,
                "transfer_mb_per_s": 25.0,
            },
            "prefetch_pages_fact": "auto",
            "prefetch_pages_bitmap": "auto",
        },
        "workload": [
            {
                "name": "monthly-by-group",
                "weight": 3,
                "restrictions": [["time", "month", 1], ["product", "group", 1]],
            },
            {
                "name": "yearly-report",
                "weight": 1,
                "restrictions": [["time", "year", 1]],
            },
        ],
        "engine": {
            "jobs": "auto",
            "vectorize": True,
        },
    }
