"""Command-line front end (replaces the original Java GUI).

The CLI exposes the advisor pipeline on the bundled configurations or on a
JSON-described schema/workload::

    warlock recommend --dataset apb1 --disks 64 --top 10
    warlock analyze   --dataset retail --disks 32
    warlock simulate  --dataset apb1 --disks 64 --queries 20
    warlock recommend --config my_warehouse.json

The JSON configuration format mirrors the input layer of the paper: a star
schema block (dimensions with hierarchy cardinalities, fact tables), a DBS &
disk parameter block and a weighted query mix.  See ``example_config()`` for a
template.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Callable, List, Optional, Tuple

from repro.analysis import (
    format_allocation_report,
    format_full_report,
    format_query_analysis,
    format_ranking_table,
    occupancy_chart,
)
from repro.api import EngineOptions
from repro.core import AdvisorConfig, Warlock
from repro.datasets import (
    apb1_query_mix,
    apb1_schema,
    retail_query_mix,
    retail_schema,
)
from repro.errors import WarlockError
from repro.io import (
    example_config,
    load_config_file,
    load_engine_section,
    recommendation_to_dict,
)
from repro.schema import StarSchema
from repro.simulation import DiskSimulator
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = ["main", "build_parser", "load_config", "example_config"]


def load_config(path: str) -> Tuple[StarSchema, QueryMix, SystemParameters]:
    """Load schema, workload and system parameters from a JSON file.

    Thin alias of :func:`repro.io.load_config_file`, kept on the CLI module for
    convenience ("the CLI's config format").
    """
    return load_config_file(path)


# ---------------------------------------------------------------------------
# Dataset / argument resolution
# ---------------------------------------------------------------------------

#: Late-applied defaults for the system/dataset flags.  The argparse defaults
#: are ``None`` so an *explicitly passed* value is detectable: with ``--config``
#: an explicit ``--disks``/``--architecture`` overrides the config file's
#: system block, while the defaults never do.
DEFAULT_SCALE = 0.1
DEFAULT_SKEW = 0.0
DEFAULT_DISKS = 64
DEFAULT_ARCHITECTURE = "shared_disk"

#: Environment variable supplying the default ``--cache-dir``.
CACHE_DIR_ENV = "WARLOCK_CACHE_DIR"


def _resolve_inputs(args: argparse.Namespace) -> Tuple[StarSchema, QueryMix, SystemParameters]:
    if args.config:
        # --scale/--skew shape the bundled datasets; a config file brings its
        # own schema, so silently ignoring them would be lying to the user.
        for flag, value in (("--scale", args.scale), ("--skew", args.skew)):
            if value is not None:
                raise WarlockError(
                    f"{flag} only applies to the bundled datasets and cannot "
                    f"modify a --config run; drop {flag} or --config"
                )
        schema, workload, system = load_config(args.config)
        # Explicitly passed CLI values override the config file's system block.
        if args.disks is not None:
            system = system.with_disks(args.disks)
        if args.architecture is not None:
            system = system.with_architecture(args.architecture)
    else:
        scale = DEFAULT_SCALE if args.scale is None else args.scale
        skew = DEFAULT_SKEW if args.skew is None else args.skew
        if args.dataset == "apb1":
            schema = apb1_schema(scale=scale, skew={"product": skew} if skew else None)
            workload = apb1_query_mix()
        elif args.dataset == "retail":
            schema = retail_schema(scale=scale)
            workload = retail_query_mix()
        else:
            raise WarlockError(f"unknown dataset {args.dataset!r}")
        system = SystemParameters(
            num_disks=DEFAULT_DISKS if args.disks is None else args.disks,
            architecture=(
                DEFAULT_ARCHITECTURE
                if args.architecture is None
                else args.architecture
            ),
        )
    return schema, workload, system


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    """The one resolver of this invocation's :class:`EngineOptions`.

    Precedence per knob: explicit flags > environment (``$WARLOCK_CACHE_DIR``)
    > the config file's ``"engine"`` block > built-in defaults.  Conflicting
    flags error out consistently across every subcommand: in particular
    ``--no-cache-persist`` with no cache directory resolved from any source
    has nothing to disable.
    """
    section = {}
    if getattr(args, "config", None):
        section = load_engine_section(args.config)
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = section.get("jobs", "auto")
    if getattr(args, "no_vectorize", False):
        vectorize = False
    elif getattr(args, "vectorize", None):
        vectorize = args.vectorize
    else:
        vectorize = section.get("vectorize", True)
    cache_dir = (
        getattr(args, "cache_dir", None)
        or os.environ.get(CACHE_DIR_ENV)
        or section.get("cache_dir")
        or None
    )
    if getattr(args, "no_cache_persist", False):
        if cache_dir is None:
            raise WarlockError(
                "--no-cache-persist has nothing to disable: no --cache-dir, "
                f"${CACHE_DIR_ENV} or config-file engine.cache_dir is set"
            )
        cache_dir = None
    cache_max_mb = getattr(args, "cache_max_mb", None)
    if cache_max_mb is None and cache_dir is not None:
        # A config-file budget only applies when a store directory resolved;
        # an *explicit* --cache-max-mb without any store is a real conflict
        # and falls through to EngineOptions' validation error.
        cache_max_mb = section.get("cache_max_mb")
    fabric = getattr(args, "fabric", None) or section.get("fabric") or None
    fabric_grace = getattr(args, "fabric_grace", None)
    if fabric_grace is None:
        fabric_grace = section.get("fabric_grace", 2.0)
    fabric_lease = getattr(args, "fabric_lease", None)
    if fabric_lease is None:
        fabric_lease = section.get("fabric_lease", 30.0)
    return EngineOptions(
        jobs=jobs,
        vectorize=vectorize,
        cache=section.get("cache", True),
        cache_dir=cache_dir,
        persist=section.get("persist", True),
        cache_max_mb=cache_max_mb,
        fabric=fabric,
        fabric_grace=fabric_grace,
        fabric_lease=fabric_lease,
    )


def _progress_meter(args: argparse.Namespace):
    """The ``--progress`` stderr meter (``None`` when disabled).

    Interactive terminals get the animated single-line meter (carriage-
    returned frames, completed with a newline).  When stderr is redirected —
    CI logs, ``2>file`` — the ``\\r`` frames would pile up into one garbled
    line, so each event is printed as its own newline-terminated record
    instead.
    """
    if not getattr(args, "progress", False):
        return None
    animate = sys.stderr.isatty()

    def on_progress(event) -> None:
        if animate:
            # One carriage-returned line per sweep, completed with a newline
            # so the next sweep (or the result) starts clean.
            end = "\n" if event.completed >= event.total else ""
            print(
                f"\rwarlock: {event.describe()}", end=end, file=sys.stderr, flush=True
            )
        else:
            print(f"warlock: {event.describe()}", file=sys.stderr, flush=True)

    return on_progress


def _install_sigint(token) -> Callable[[], None]:
    """Route the first Ctrl-C to ``token.cancel()``; returns a restorer.

    The sweep then stops cooperatively at its next chunk boundary and the
    engine's persist-in-finally path still spills every completed entry to an
    attached store.  A second Ctrl-C raises :class:`KeyboardInterrupt` as
    usual (escape hatch for a stuck sweep).  Off the main thread — embedded
    callers running the CLI programmatically — signals cannot be installed;
    the restorer is then a no-op and cancellation simply stays manual.
    """

    def handler(signum, frame):
        if token.cancelled:
            raise KeyboardInterrupt
        token.cancel()

    try:
        previous = signal.signal(signal.SIGINT, handler)
    except ValueError:
        return lambda: None
    return lambda: signal.signal(signal.SIGINT, previous)


def _advisor(args: argparse.Namespace) -> Warlock:
    schema, workload, system = _resolve_inputs(args)
    config = AdvisorConfig(
        top_fraction=args.top_fraction,
        top_candidates=args.top,
        max_fragments=args.max_fragments,
    )
    return Warlock(schema, workload, system, config, options=_engine_options(args))


def _finish_cache(advisor: Warlock) -> None:
    """Flush the persistent cache and report its use (stderr, one line)."""
    cache = advisor.cache
    if cache is None or cache.store is None:
        return
    saved = advisor.persist_cache()
    stats = cache.stats
    if saved is not None:
        store_note = f"saved {saved} entries"
    elif not advisor.options.persist:
        store_note = "store read-only (persist disabled)"
    elif cache.dirty:
        # persist() returned nothing although there is unsaved content: the
        # store location is not writable (best-effort by design, but worth
        # telling the user — every future run will start cold).
        store_note = "store not writable (warm start unavailable)"
    else:
        store_note = "store up to date"
    print(
        f"persistent cache [{cache.store.cache_dir}]: "
        f"{cache.loaded_from_disk} entries loaded; "
        f"disk hits {stats.disk_hits}/{stats.lookups} ({stats.disk_hit_rate:.1%}); "
        + store_note,
        file=sys.stderr,
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_recommend(args: argparse.Namespace) -> int:
    advisor = _advisor(args)
    recommendation = advisor.recommend(
        on_progress=_progress_meter(args), cancel=getattr(args, "cancel", None)
    )
    if args.json:
        payload = recommendation_to_dict(recommendation)
        # Convenience aliases for scripts that only need the headline counts.
        payload["excluded"] = recommendation.exclusion_report.excluded_count
        payload["evaluated"] = recommendation.exclusion_report.surviving_count
        print(json.dumps(payload, indent=2))
    else:
        print(format_ranking_table(recommendation))
    _finish_cache(advisor)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    advisor = _advisor(args)
    recommendation = advisor.recommend(
        on_progress=_progress_meter(args), cancel=getattr(args, "cancel", None)
    )
    candidate = (
        recommendation.candidate(args.fragmentation)
        if args.fragmentation
        else recommendation.best
    )
    print(format_query_analysis(candidate, advisor.workload))
    print()
    print(format_allocation_report(candidate))
    print()
    print(occupancy_chart(candidate))
    _finish_cache(advisor)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    advisor = _advisor(args)
    recommendation = advisor.recommend(
        on_progress=_progress_meter(args), cancel=getattr(args, "cancel", None)
    )
    print(format_full_report(recommendation, detail_top=args.detail_top))
    _finish_cache(advisor)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    advisor = _advisor(args)
    recommendation = advisor.recommend(
        on_progress=_progress_meter(args), cancel=getattr(args, "cancel", None)
    )
    candidate = (
        recommendation.candidate(args.fragmentation)
        if args.fragmentation
        else recommendation.best
    )
    simulator = DiskSimulator(advisor.system)
    # The evaluation already resolved the prefetch setting for this candidate
    # (memoized, engine-validated); re-deriving it here would recompute the
    # access structures through a second code path that could drift.
    result = simulator.run_workload(
        candidate.layout,
        advisor.workload,
        candidate.bitmap_scheme,
        candidate.allocation,
        candidate.prefetch,
        queries_per_class=args.queries,
        seed=args.seed,
    )
    print(f"Simulating {candidate.label} on {advisor.system.describe()}")
    print(result.describe())
    print(
        f"Analytical prediction: response {candidate.response_time_ms:,.1f} ms, "
        f"I/O cost {candidate.io_cost_ms:,.1f} ms"
    )
    _finish_cache(advisor)
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    """Print the workload-driven dimension ranking and fragmentation suggestion."""
    from repro.analysis import format_table
    from repro.graph import dimension_ranking, suggest_fragmentation_dimensions

    # Resolved for validation only: conflicting engine flags (for instance
    # --no-cache-persist with nothing to disable) must error consistently on
    # every subcommand, including ones that never build an advisor.
    _engine_options(args)
    schema, workload, _system = _resolve_inputs(args)
    ranking = dimension_ranking(schema, workload)
    print(f"Dimension access shares for {schema.name} ({len(workload)} query classes)")
    print(
        format_table(
            ["dimension", "workload share restricting it"],
            [[name, f"{share:.1%}"] for name, share in ranking],
        )
    )
    suggestion = suggest_fragmentation_dimensions(
        schema, workload, max_dimensions=args.max_dimensions
    )
    print()
    print("Suggested fragmentation dimensions (pre-selection, cost model decides levels):")
    print("  " + (", ".join(suggestion) if suggestion else "(none)"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Run the interactive what-if studies for the recommended fragmentation."""
    from repro.tuning import architecture_study, disk_count_study, prefetch_study

    advisor = _advisor(args)
    recommendation = advisor.recommend(
        on_progress=_progress_meter(args), cancel=getattr(args, "cancel", None)
    )
    candidate = (
        recommendation.candidate(args.fragmentation)
        if args.fragmentation
        else recommendation.best
    )
    spec = candidate.spec
    print(f"What-if studies for {spec.label} on {advisor.system.describe()}")
    print()
    # The studies share the advisor's evaluation cache, so settings that keep
    # the access structure unchanged reuse the recommend() work above.
    disks = disk_count_study(
        advisor.schema,
        advisor.workload,
        advisor.system,
        spec,
        config=advisor.config,
        cache=advisor.cache,
        options=advisor.options,
        cancel=getattr(args, "cancel", None),
    )
    print(disks.format())
    print()
    architecture = architecture_study(
        advisor.schema,
        advisor.workload,
        advisor.system,
        spec,
        config=advisor.config,
        cache=advisor.cache,
        options=advisor.options,
        cancel=getattr(args, "cancel", None),
    )
    print(architecture.format())
    print()
    prefetch = prefetch_study(
        advisor.schema,
        advisor.workload,
        advisor.system,
        spec,
        config=advisor.config,
        cache=advisor.cache,
        options=advisor.options,
        cancel=getattr(args, "cancel", None),
    )
    print(prefetch.format())
    _finish_cache(advisor)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules (see :mod:`repro.lint`)."""
    from repro.lint.framework import LintError
    from repro.lint.runner import run_from_args

    try:
        return run_from_args(args)
    except LintError as error:
        print(f"lint: error: {error}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve advisor sessions over HTTP (see :mod:`repro.service`)."""
    from repro.service import AdvisorServer, RequestExecutor, SessionRegistry

    # The serve command shares the whole input/engine resolver stack: the
    # common flags describe the warehouse preloaded at startup, and the
    # resolved EngineOptions become the server-wide defaults every HTTP
    # registration's "engine" block overrides field by field.
    options = _engine_options(args)
    registry = SessionRegistry(
        max_sessions=args.max_sessions, idle_timeout=args.idle_timeout
    )
    executor = RequestExecutor(
        workers=args.request_workers,
        capacity=args.queue_capacity,
        timeout=args.request_timeout,
    )
    server = AdvisorServer(
        registry=registry,
        executor=executor,
        host=args.host,
        port=args.port,
        options=options,
    )
    if args.warehouse:
        schema, workload, system = _resolve_inputs(args)
        config = AdvisorConfig(
            top_fraction=args.top_fraction,
            top_candidates=args.top,
            max_fragments=args.max_fragments,
        )
        registry.register(
            args.warehouse, schema, workload, system, config=config, options=options
        )
        print(f"warlock: preloaded warehouse {args.warehouse!r}", file=sys.stderr)

    def announce(srv) -> None:
        print(
            f"warlock: serving advisor sessions on {srv.url} "
            f"(max {args.max_sessions} sessions, {args.request_workers} request "
            f"workers; Ctrl-C to stop)",
            file=sys.stderr,
            flush=True,
        )

    # The SIGINT-wired token from main() doubles as the shutdown signal:
    # the first Ctrl-C stops accepting connections, closes every session
    # (flushing caches to attached stores) and returns cleanly.
    server.run(shutdown=getattr(args, "cancel", None), on_ready=announce)
    print("warlock: server stopped", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Serve one fabric coordinator as a sweep worker (see :mod:`repro.fabric`)."""
    from repro.fabric import FaultInjected, FaultPlan, RetryPolicy, parse_address
    from repro.fabric.worker import run_worker

    address = parse_address(args.coordinator)
    plan = FaultPlan.from_env()
    faults = plan.injector() if plan is not None else None
    retry = RetryPolicy(
        max_attempts=args.max_attempts, deadline=args.connect_deadline
    )
    print(
        f"warlock: worker serving coordinator {address[0]}:{address[1]}"
        + (f" with injected faults {plan}" if plan is not None else ""),
        file=sys.stderr,
    )
    try:
        run_worker(
            address,
            retry=retry,
            faults=faults,
            cancel=getattr(args, "cancel", None),
        )
    except FaultInjected as error:
        # An injected kill must end the process like a real crash would:
        # non-zero, without the WarlockError pretty-printing.
        print(f"warlock: worker crashed: {error}", file=sys.stderr)
        return 17
    return 0


def _cmd_example_config(args: argparse.Namespace) -> int:
    print(json.dumps(example_config(), indent=2))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _jobs_value(value: str):
    """Argparse type for ``--jobs``: a strictly positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {parsed}")
    return parsed


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=["apb1", "retail"],
        default="apb1",
        help="bundled dataset to use when no --config is given",
    )
    parser.add_argument("--config", help="JSON configuration file (see example-config)")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"fact table scale factor for the bundled datasets "
        f"(default {DEFAULT_SCALE}; an error with --config, which brings its own schema)",
    )
    parser.add_argument(
        "--skew",
        type=float,
        default=None,
        help=f"zipf theta for the product dimension (apb1 only; default "
        f"{DEFAULT_SKEW}; an error with --config)",
    )
    parser.add_argument(
        "--disks",
        type=int,
        default=None,
        help=f"number of disks (default {DEFAULT_DISKS}; when passed together "
        f"with --config it overrides the config file's system block)",
    )
    parser.add_argument(
        "--architecture",
        default=None,
        help=f"parallel architecture: shared_disk or shared_everything "
        f"(default {DEFAULT_ARCHITECTURE}; when passed together with --config "
        f"it overrides the config file's system block)",
    )
    parser.add_argument("--top", type=int, default=10, help="candidates in the final ranking")
    parser.add_argument(
        "--top-fraction",
        type=float,
        default=0.25,
        help="leading fraction (by I/O cost) re-ranked by response time",
    )
    parser.add_argument(
        "--max-fragments", type=int, default=100_000, help="exclusion threshold on fragment count"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        metavar="N",
        help="worker processes for the candidate-evaluation engine "
        "(default 'auto' = pick from available CPUs and sweep size; "
        "1 forces serial; parallel runs return identical results; a config "
        "file's engine block may override the default)",
    )
    parser.add_argument(
        "--no-vectorize",
        action="store_true",
        help="evaluate the per-query-class cost sweep with the scalar "
        "reference path instead of the vectorized candidate-axis batches "
        "(results are bit-identical; this is an escape hatch / A-B check)",
    )
    parser.add_argument(
        "--vectorize",
        choices=["candidates", "classes", "none"],
        default=None,
        help="vectorization mode of the cost sweep: 'candidates' (default) "
        "batches whole same-structure candidate chunks as 2-D numpy arrays, "
        "'classes' vectorizes one candidate's class axis at a time, 'none' "
        "runs the scalar reference path; all modes are bit-identical "
        "(--no-vectorize wins over this flag)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory of the persistent evaluation cache: invocations "
        "sharing it warm-start from each other's evaluations (content-"
        "addressed, version-salted; corrupted or stale stores are ignored "
        f"and results never change).  Falls back to ${CACHE_DIR_ENV}, then "
        "to the config file's engine block",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="byte budget of the persistent cache directory in megabytes: "
        "every save garbage-collects the store down to the budget, evicting "
        "the least-recently-used entries first (requires a cache directory; "
        "default: unbounded).  Falls back to the config file's engine block",
    )
    parser.add_argument(
        "--no-cache-persist",
        action="store_true",
        help=f"keep the evaluation cache in memory only, ignoring "
        f"--cache-dir, ${CACHE_DIR_ENV} and the config file's engine block "
        "(an error when none of those is set — there is nothing to disable)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live candidate-sweep progress meter on stderr "
        "(one update per evaluation chunk)",
    )
    parser.add_argument(
        "--fabric",
        default=None,
        metavar="HOST:PORT",
        help="lease candidate sweeps to distributed fabric workers: bind a "
        "sweep coordinator on this address and hand out chunk leases to "
        "'warlock worker' processes (results are bit-identical to local "
        "runs; with no reachable workers the sweep degrades to local "
        "evaluation after --fabric-grace seconds)",
    )
    parser.add_argument(
        "--fabric-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds of total worker silence before a fabric sweep degrades "
        "to local evaluation (default 2)",
    )
    parser.add_argument(
        "--fabric-lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds of heartbeat silence before a fabric chunk lease is "
        "re-queued to another worker (default 30)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``warlock`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="warlock",
        description="WARLOCK: data allocation advisor for parallel data warehouses",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    recommend = subparsers.add_parser("recommend", help="print the ranked candidate list")
    _add_common_arguments(recommend)
    recommend.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    recommend.set_defaults(func=_cmd_recommend)

    analyze = subparsers.add_parser("analyze", help="detailed query/allocation analysis")
    _add_common_arguments(analyze)
    analyze.add_argument("--fragmentation", help="label of the candidate to analyze (default: best)")
    analyze.set_defaults(func=_cmd_analyze)

    report = subparsers.add_parser("report", help="full report (ranking + analysis)")
    _add_common_arguments(report)
    report.add_argument("--detail-top", type=int, default=1, help="candidates analyzed in detail")
    report.set_defaults(func=_cmd_report)

    simulate = subparsers.add_parser("simulate", help="replay the workload on the recommended allocation")
    _add_common_arguments(simulate)
    simulate.add_argument("--fragmentation", help="label of the candidate to simulate (default: best)")
    simulate.add_argument("--queries", type=int, default=10, help="query instances per class")
    simulate.add_argument("--seed", type=int, default=0, help="random seed")
    simulate.set_defaults(func=_cmd_simulate)

    suggest = subparsers.add_parser(
        "suggest", help="rank dimensions by workload affinity and suggest fragmentation dimensions"
    )
    _add_common_arguments(suggest)
    suggest.add_argument(
        "--max-dimensions", type=int, default=3, help="maximum suggested fragmentation dimensions"
    )
    suggest.set_defaults(func=_cmd_suggest)

    tune = subparsers.add_parser(
        "tune", help="run disk/architecture/prefetch what-if studies for the recommended fragmentation"
    )
    _add_common_arguments(tune)
    tune.add_argument("--fragmentation", help="label of the candidate to study (default: best)")
    tune.set_defaults(func=_cmd_tune)

    serve = subparsers.add_parser(
        "serve", help="serve advisor sessions over HTTP (SSE progress streaming)"
    )
    _add_common_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (default 8642; 0 picks a free port)"
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="cap on simultaneously live advisor sessions; the least-recently-"
        "used session over the cap is closed (its cache flushed to any "
        "attached store) while its warehouse stays registered",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close sessions idle longer than this on the next registry "
        "access (default: never)",
    )
    serve.add_argument(
        "--request-workers",
        type=int,
        default=4,
        help="worker threads draining the request queue (concurrent sweeps)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="bound on queued requests; a saturated queue answers 503",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline covering queue wait plus execution: a "
        "request over budget is answered 504 and its sweep cancelled at the "
        "next chunk boundary (completed entries stay warm in the session "
        "cache; default: no deadline)",
    )
    serve.add_argument(
        "--warehouse",
        default=None,
        metavar="NAME",
        help="preload the warehouse described by the dataset/config flags "
        "under this name (more can be registered over HTTP)",
    )
    serve.set_defaults(func=_cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="serve a sweep-fabric coordinator as an evaluation worker "
        "(pull chunk leases, evaluate, heartbeat; see 'recommend --fabric')",
    )
    worker.add_argument(
        "coordinator",
        metavar="HOST:PORT",
        help="address of the coordinator to pull leases from",
    )
    worker.add_argument(
        "--max-attempts",
        type=int,
        default=30,
        metavar="N",
        help="connection attempts per request before giving up (default 30)",
    )
    worker.add_argument(
        "--connect-deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="total backoff budget per request; a coordinator unreachable "
        "past it ends the worker gracefully (default 60)",
    )
    worker.set_defaults(func=_cmd_worker)

    example = subparsers.add_parser("example-config", help="print a JSON configuration template")
    example.set_defaults(func=_cmd_example_config)

    lint = subparsers.add_parser(
        "lint",
        help="static analysis over the advisor's load-bearing contracts "
        "(see also: python -m repro.lint)",
    )
    # Deferred import: the lint framework is only needed by this subcommand.
    from repro.lint.runner import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro.api import CancellationToken
    from repro.errors import EvaluationCancelled

    from repro.lint.sanitizer import install_from_env

    # Opt-in runtime concurrency sanitizer (WARLOCK_SANITIZE=1): no-op when
    # the variable is unset, instrument-only when set.
    install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    # Every command runs under a SIGINT-wired CancellationToken: Ctrl-C
    # cancels the sweep cooperatively at the next chunk boundary (completed
    # entries are still spilled to an attached store by the engine's
    # persist-in-finally path) instead of dumping a KeyboardInterrupt trace.
    args.cancel = CancellationToken()
    restore_sigint = _install_sigint(args.cancel)
    try:
        return args.func(args)
    except EvaluationCancelled as error:
        print(f"warlock: cancelled ({error})", file=sys.stderr)
        return 130
    except WarlockError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        restore_sigint()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
