# lint: wire-types
"""Framed pickle wire protocol of the sweep fabric.

The fabric speaks the engine's process-pool protocol over a TCP socket: the
payloads are the same picklable values the pool already ships between parent
and workers (:class:`~repro.engine.executor.EngineContext` out,
:class:`~repro.engine.result.CandidateResultBatch` back), wrapped in a
minimal checksummed frame::

    MAGIC(4) | length(4, big-endian) | crc32(4, big-endian) | payload

Every frame is verified end to end — magic, bounded length, CRC — before its
payload is unpickled, so a corrupted frame (torn write, injected bit flip)
raises :class:`~repro.errors.FabricError` and the *connection* is abandoned,
never the sweep: the sender retries under its
:class:`~repro.fabric.retry.RetryPolicy`, which is safe because results are
content-addressed and the coordinator dedupes by lease.

Connections are one-shot request/response pairs (connect, one frame out, one
frame in, close) — the simplest protocol that makes every fault mode
(refused connect, dropped reply, duplicated request) locally recoverable.

Messages are ``(kind, *fields)`` tuples; :class:`Lease` is the one structured
record on the wire and carries ``to_dict()`` for diagnostics (this module is
marked ``wire-types`` for ``warlock lint``).  Like the cache store, frames
are **pickle**: a fabric endpoint must be trusted to the same degree as the
code itself — bind coordinators to localhost or a private network you own.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.faults import FaultInjector
from repro.fabric.retry import RetryPolicy

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "Lease",
    "parse_address",
    "read_message",
    "request",
    "write_message",
]

#: Default coordinator port (``--fabric host`` without an explicit port).
DEFAULT_PORT = 8643

#: Frame preamble: protocol magic + version (bump on incompatible change).
_MAGIC = b"WLF1"

#: Upper bound on accepted frames; a context or result batch for a large
#: sweep is MBs, never GBs — anything bigger is a corrupted length field.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!4sII")


@dataclass(frozen=True)
class Lease(object):
    """One chunk lease: the unit of distributed work.

    ``chunk_id`` identifies the chunk across re-issues — a lease re-queued
    after a worker crash keeps its id, which is what lets the coordinator
    dedupe a late duplicate result.  ``indices`` are plan indices into the
    sweep's :class:`~repro.engine.executor.EngineContext` specs; ``timeout``
    is the seconds of heartbeat silence after which the coordinator re-queues.
    """

    chunk_id: int
    indices: Tuple[int, ...]
    timeout: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (diagnostics and logs, not the wire itself)."""
        return {
            "chunk_id": self.chunk_id,
            "indices": list(self.indices),
            "timeout": self.timeout,
        }


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` (or bare ``host``) fabric address."""
    if not isinstance(text, str) or not text.strip():
        raise FabricError(f"fabric address must be a host:port string, got {text!r}")
    host, sep, port_text = text.strip().rpartition(":")
    if not sep:
        return text.strip(), DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError:
        raise FabricError(f"invalid fabric port {port_text!r} in {text!r}")
    if not 0 <= port <= 65535:
        raise FabricError(f"fabric port out of range: {port}")
    return host or "127.0.0.1", port


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        block = sock.recv(remaining)
        if not block:
            raise FabricError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(block)
        remaining -= len(block)
    return b"".join(chunks)


def write_message(
    sock: socket.socket, message: Any, faults: Optional[FaultInjector] = None
) -> None:
    """Pickle and frame ``message`` onto ``sock`` (fault hooks apply here).

    An injected *drop* closes the socket without sending (the peer sees EOF);
    an injected *corruption* flips one payload byte after the CRC was
    computed, so the receiver must reject the frame.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    checksum = zlib.crc32(payload)
    if faults is not None:
        faults.maybe_delay(time.sleep)
        if faults.should_drop():
            sock.close()
            return
        payload = faults.transform_payload(payload)
    sock.sendall(_HEADER.pack(_MAGIC, len(payload), checksum) + payload)


def read_message(sock: socket.socket) -> Any:
    """Read one frame, verify it, and unpickle its payload."""
    header = _read_exact(sock, _HEADER.size)
    magic, length, checksum = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FabricError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FabricError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = _read_exact(sock, length)
    if zlib.crc32(payload) != checksum:
        raise FabricError("frame checksum mismatch (corrupted payload)")
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise FabricError(f"undecodable frame payload: {error}")


def _exchange(
    address: Tuple[str, int],
    message: Any,
    timeout: float,
    faults: Optional[FaultInjector],
) -> Any:
    if faults is not None:
        faults.on_connect()
    with socket.create_connection(address, timeout=timeout) as sock:
        write_message(sock, message, faults=faults)
        reply = read_message(sock)
    if faults is not None and faults.should_duplicate():
        # At-least-once on purpose: the same request goes out again and the
        # *first* reply wins — the receiver must tolerate the replay.
        try:
            with socket.create_connection(address, timeout=timeout) as sock:
                write_message(sock, message, faults=faults)
                read_message(sock)
        except (OSError, FabricError):
            pass  # the duplicate is best-effort noise, never load-bearing
    return reply


def request(
    address: Tuple[str, int],
    message: Any,
    timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    rng: Any = None,
) -> Any:
    """One request/response round trip, retried under ``retry``.

    Retries cover connection errors, timeouts and rejected frames — all the
    faults the injector can produce.  With ``retry=None`` a single attempt is
    made.
    """
    def attempt() -> Any:
        return _exchange(address, message, timeout, faults)

    if retry is None:
        return attempt()
    return retry.call(attempt, retry_on=(OSError, FabricError), rng=rng)
