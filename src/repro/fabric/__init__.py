"""Fault-tolerant distributed sweep fabric (coordinator/worker over TCP).

ROADMAP item 2: shard candidate sweeps across machines so candidate spaces
100-1000x the current enumeration become tractable.  The fabric is the
engine's process-pool protocol lifted onto a socket — the coordinator ships
one picklable :class:`~repro.engine.executor.EngineContext` per worker and
leases axis-structure chunks of plan indices; workers evaluate each lease
through :func:`~repro.engine.executor.evaluate_specs_in_context` (the exact
code path the pool workers run) and return columnar
:class:`~repro.engine.result.CandidateResultBatch` payloads.  Results are
therefore **bit-identical to the local serial and pool paths by
construction**, and every entry is content-addressed, so the delivery
contract can be at-least-once: a re-queued lease that completes twice simply
dedupes.

Robustness is the headline, not an afterthought:

* leases carry deadlines, extended by worker heartbeats and **re-queued** on
  heartbeat loss or worker crash (:mod:`repro.fabric.coordinator`);
* worker reconnects and result submission are governed by a shared
  :class:`~repro.fabric.retry.RetryPolicy` (exponential backoff + jitter,
  budgeted deadlines);
* the coordinator **degrades gracefully**: with no live workers it evaluates
  the remaining leases through the local serial path (one visible warning,
  never an exception), and cooperative cancel propagates to workers at chunk
  boundaries;
* every frame of the wire protocol is checksummed
  (:mod:`repro.fabric.protocol`) so a corrupted payload is detected and
  retried, never trusted;
* a seeded :class:`~repro.fabric.faults.FaultPlan` harness (environment
  ``WARLOCK_FAULTS=``) injects worker kills, connection refusals,
  delayed/dropped/duplicated messages and corrupted frames —
  deterministically, so the chaos tests and the CI smoke step are
  reproducible.

Layering: the fabric sits next to :mod:`repro.api` (layer 5 in
``setup.cfg``); the engine reaches it only through a lazy import (the same
sanctioned upward hatch it uses for ``repro.api``), and the CLI's ``warlock
worker`` subcommand is the process entry point.
"""

from repro.fabric.coordinator import SweepCoordinator
from repro.fabric.faults import FaultInjected, FaultInjector, FaultPlan
from repro.fabric.protocol import parse_address
from repro.fabric.retry import RetryPolicy
from repro.fabric.worker import run_worker

__all__ = [
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "SweepCoordinator",
    "parse_address",
    "run_worker",
]
