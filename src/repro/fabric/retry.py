"""Retry policy shared by the fabric's reconnect and submission paths.

One frozen value object answers every "how long do I keep trying" question in
the fabric: worker reconnects, result submission, context fetches.  The
schedule is classic capped exponential backoff with proportional jitter, plus
an optional **deadline budget** bounding the *total* time slept — a worker
whose coordinator is gone must give up in bounded time, not hammer a dead
address forever.

The policy is deterministic under a seeded RNG (the property tests pin this):
jitter draws come from the ``random.Random`` instance the caller passes, so a
seeded run replays the exact same schedule.  Nothing in here touches global
randomness or wall clocks — the fabric is not parity-critical, but keeping
the schedule a pure function of ``(policy, rng)`` is what makes the fault
harness reproducible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

from repro.errors import AdvisorError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter and a total-sleep budget.

    Parameters
    ----------
    max_attempts:
        Total attempts (the first try included).  ``1`` means no retries.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Growth factor of the backoff caps (``>= 1``).
    max_delay:
        Upper bound on any single sleep; the cap sequence
        ``min(base_delay * multiplier**k, max_delay)`` is therefore monotone
        non-decreasing.
    jitter:
        Proportional jitter fraction in ``[0, 1]``: each sleep is drawn
        uniformly from ``[cap * (1 - jitter), cap * (1 + jitter)]``.
    deadline:
        Optional budget on the *total* seconds slept across all retries;
        the schedule truncates (the final sleep is clipped) once the budget
        is exhausted.  ``None`` means bounded only by ``max_attempts``.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise AdvisorError(
                f"RetryPolicy.max_attempts must be a positive integer, "
                f"got {self.max_attempts!r}"
            )
        if self.base_delay < 0:
            raise AdvisorError(
                f"RetryPolicy.base_delay must be non-negative, got {self.base_delay!r}"
            )
        if self.multiplier < 1:
            raise AdvisorError(
                f"RetryPolicy.multiplier must be at least 1, got {self.multiplier!r}"
            )
        if self.max_delay < self.base_delay:
            raise AdvisorError(
                f"RetryPolicy.max_delay ({self.max_delay!r}) must not undercut "
                f"base_delay ({self.base_delay!r})"
            )
        if not 0 <= self.jitter <= 1:
            raise AdvisorError(
                f"RetryPolicy.jitter must be within [0, 1], got {self.jitter!r}"
            )
        if self.deadline is not None and self.deadline < 0:
            raise AdvisorError(
                f"RetryPolicy.deadline must be non-negative, got {self.deadline!r}"
            )

    def cap(self, retry: int) -> float:
        """The jitter-free backoff cap before retry number ``retry`` (0-based)."""
        return min(self.base_delay * self.multiplier**retry, self.max_delay)

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The sleep schedule: one delay per retry, budget-clipped.

        Yields at most ``max_attempts - 1`` delays.  With a ``deadline``, the
        cumulative sum never exceeds it: the sleep that would cross the
        budget is clipped to the remainder and ends the schedule.
        """
        rng = rng if rng is not None else random.Random()
        remaining = self.deadline
        for retry in range(self.max_attempts - 1):
            cap = self.cap(retry)
            delay = cap * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
            delay = max(0.0, delay)
            if remaining is not None:
                if remaining <= 0:
                    return
                if delay >= remaining:
                    yield remaining
                    return
                remaining -= delay
            yield delay

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn`` under this policy, retrying on ``retry_on`` errors.

        The last error is re-raised once the attempts (or the sleep budget)
        are exhausted.  ``sleep`` is injectable so tests run instantly.
        """
        rng = rng if rng is not None else random.Random()
        schedule = self.delays(rng)
        while True:
            try:
                return fn()
            except retry_on:
                delay = next(schedule, None)
                if delay is None:
                    raise
                sleep(delay)
