"""Sweep coordinator: a leased chunk queue over TCP.

The coordinator owns the sweep's work queue.  Each chunk of plan indices is
issued to a worker as a :class:`~repro.fabric.protocol.Lease` with a
deadline; heartbeats extend the deadline, and a lease whose deadline lapses
(worker crashed, network gone) is silently **re-queued** for the next worker.
Delivery is therefore at-least-once — safe because every result is a
content-addressed function of its inputs, so a duplicate completion of a
re-queued lease dedupes by ``chunk_id`` instead of double-counting.

Threading model: the listener thread accepts connections and hands each
one-shot request to a short-lived handler thread.  Handlers only mutate the
lease books under ``self._lock`` and enqueue result batches; everything
heavier — decoding batches, filling the evaluation cache, progress callbacks,
and the *degraded-mode* inline evaluation — happens in :meth:`run`, which
executes on the caller's (the engine's) thread.  The engine's caches are
``# lint: not-thread-safe``; keeping them off the handler threads is what
makes that safe.

Degraded mode is the last line of the robustness story: when no worker has
made contact for ``grace`` seconds, :meth:`run` starts evaluating pending
leases inline through the exact worker code path
(:func:`~repro.engine.executor.evaluate_specs_in_context`), one chunk per
poll so late-arriving workers can still pick up the remainder.  A sweep with
zero reachable workers completes locally with a single stderr warning —
never an exception, and bit-identical to the local run.
"""

from __future__ import annotations

import queue
import socket
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationCancelled, FabricError
from repro.fabric.protocol import Lease, read_message, write_message

__all__ = ["SweepCoordinator"]

#: Interval a worker is told to wait before re-polling an empty queue.
_WAIT_INTERVAL = 0.2

#: Poll period of the :meth:`SweepCoordinator.run` loop, in seconds.
_POLL_INTERVAL = 0.05

#: Per-connection socket timeout for one-shot request handling.
_CONNECTION_TIMEOUT = 10.0


class SweepCoordinator:
    """Lease ``chunks`` of ``context``'s specs to fabric workers.

    Parameters
    ----------
    context:
        The picklable :class:`~repro.engine.executor.EngineContext` shipped
        once to each worker (the pool initializer payload, over the wire).
    chunks:
        Axis-structure chunks of plan indices, in deterministic sweep order.
        Chunking happens *before* distribution and does not depend on worker
        count — which is why fabric results are fingerprint-identical to
        local runs regardless of how many workers show up or die.
    host, port:
        Bind address of the work queue (raises ``OSError`` when taken; the
        engine treats that as "no fabric" and falls back to the local path).
    lease_timeout:
        Seconds of heartbeat silence before a lease is re-queued.
    grace:
        Seconds of total worker silence before degraded inline evaluation
        starts.
    cache:
        Optional :class:`~repro.engine.cache.EvaluationCache` used *only* by
        degraded inline evaluation on the :meth:`run` thread.
    """

    def __init__(
        self,
        context: Any,
        chunks: Sequence[Sequence[int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        grace: float = 2.0,
        cache: Any = None,
    ) -> None:
        if lease_timeout <= 0:
            raise FabricError(f"lease_timeout must be positive, got {lease_timeout!r}")
        if grace < 0:
            raise FabricError(f"grace must be non-negative, got {grace!r}")
        self._context = context
        self._chunks: List[Tuple[int, ...]] = [tuple(chunk) for chunk in chunks]
        self.lease_timeout = lease_timeout
        self.grace = grace
        self._cache = cache

        self._lock = threading.Lock()
        self._pending: Deque[int] = deque(range(len(self._chunks)))
        self._active: Dict[int, Tuple[float, str]] = {}
        self._done: Set[int] = set()
        self._results: "queue.Queue[Tuple[int, str, Any]]" = queue.Queue()
        self._workers: Dict[str, float] = {}
        self._cancelled = False
        self._finished = False
        self._closed = False

        #: Robustness counters, reported in the end-of-run stats line.
        self.requeued_leases = 0
        self.duplicate_results = 0
        self.corrupt_frames = 0
        #: True once degraded inline evaluation has started.
        self.degraded = False

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(32)
            self._listener.settimeout(_POLL_INTERVAL)
        except OSError:
            self._listener.close()
            raise
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection handling (listener + handler threads) ---------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutdown
            handler = threading.Thread(
                target=self._serve, args=(conn,), name="fabric-conn", daemon=True
            )
            handler.start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(_CONNECTION_TIMEOUT)
                message = read_message(conn)
                reply = self._handle(message)
                write_message(conn, reply)
        except FabricError:
            # A corrupted or truncated frame: drop the connection, let the
            # sender's RetryPolicy re-send over a fresh one.
            with self._lock:
                self.corrupt_frames += 1
        except OSError:
            pass  # peer went away mid-exchange; its retry covers this

    def _handle(self, message: Any) -> Tuple[Any, ...]:
        """Serve one request.  Lease-book mutations only, under the lock."""
        if not isinstance(message, tuple) or not message:
            raise FabricError(f"malformed fabric message: {message!r}")
        kind = message[0]
        now = time.monotonic()
        with self._lock:
            if kind == "hello":
                (_, worker_id) = message
                self._workers[worker_id] = now
                return ("welcome", self.lease_timeout)
            if kind == "context":
                return ("context", self._context)
            if kind == "lease":
                (_, worker_id) = message
                self._workers[worker_id] = now
                if self._cancelled:
                    return ("cancel",)
                if self._finished:
                    return ("shutdown",)
                chunk_id = self._next_pending()
                if chunk_id is None:
                    if not self._active and not self._pending:
                        return ("shutdown",)
                    return ("wait", _WAIT_INTERVAL)
                self._active[chunk_id] = (now + self.lease_timeout, worker_id)
                lease = Lease(chunk_id, self._chunks[chunk_id], self.lease_timeout)
                return ("lease", lease)
            if kind == "heartbeat":
                (_, worker_id, chunk_id) = message
                self._workers[worker_id] = now
                if self._cancelled:
                    return ("cancel",)
                entry = self._active.get(chunk_id)
                if entry is not None and entry[1] == worker_id:
                    self._active[chunk_id] = (now + self.lease_timeout, worker_id)
                return ("ok",)
            if kind == "result":
                (_, worker_id, chunk_id, batch) = message
                self._workers[worker_id] = now
                self._results.put((chunk_id, worker_id, batch))
                return ("ok",)
        raise FabricError(f"unknown fabric message kind: {message[0]!r}")

    def _next_pending(self) -> Optional[int]:
        """Pop the next leasable chunk id (skipping stale re-queue entries)."""
        while self._pending:
            chunk_id = self._pending.popleft()
            if chunk_id not in self._done and chunk_id not in self._active:
                return chunk_id
        return None

    # -- the run loop (caller thread) -----------------------------------------------

    def live_workers(self) -> int:
        """Workers heard from within one lease timeout."""
        horizon = time.monotonic() - self.lease_timeout
        with self._lock:
            return sum(1 for last in self._workers.values() if last >= horizon)

    def run(
        self,
        cancel: Any = None,
        on_chunk: Optional[Callable[[Tuple[int, ...], List[Tuple[int, Any]]], None]] = None,
    ) -> Dict[int, Any]:
        """Drive the sweep to completion; returns ``{index: candidate}``.

        ``on_chunk(chunk_indices, pairs)`` fires on the caller's thread once
        per *first* completion of each chunk — cache insertion and progress
        reporting belong there.  Raises
        :class:`~repro.errors.EvaluationCancelled` when ``cancel`` trips;
        workers observe the cancel at their next chunk boundary.
        """
        from repro.api.progress import cancel_requested

        results: Dict[int, Any] = {}
        last_contact = time.monotonic()
        try:
            while True:
                with self._lock:
                    if len(self._done) == len(self._chunks):
                        self._finished = True
                        break
                if cancel_requested(cancel):
                    with self._lock:
                        self._cancelled = True
                    raise EvaluationCancelled(
                        "candidate sweep cancelled (fabric coordinator)"
                    )
                self._drain_results(results, on_chunk)
                self._requeue_expired()
                with self._lock:
                    if self._workers:
                        last_contact = max(last_contact, max(self._workers.values()))
                    silent = time.monotonic() - last_contact
                if silent >= self.grace:
                    self._evaluate_one_inline(results, on_chunk)
        finally:
            with self._lock:
                self._finished = True
        self._print_stats()
        return results

    def _drain_results(
        self,
        results: Dict[int, Any],
        on_chunk: Optional[Callable[[Tuple[int, ...], List[Tuple[int, Any]]], None]],
    ) -> None:
        block = True
        while True:
            try:
                chunk_id, _, batch = self._results.get(
                    timeout=_POLL_INTERVAL if block else 0
                )
            except queue.Empty:
                return
            block = False  # drain the rest without waiting
            with self._lock:
                if chunk_id in self._done:
                    self.duplicate_results += 1
                    continue
                self._done.add(chunk_id)
                self._active.pop(chunk_id, None)
            try:
                pairs = batch.to_candidates(self._context)
            except Exception as error:
                # An undecodable batch (made it past the frame checksum but
                # not past numpy): treat like a lost result and re-queue.
                with self._lock:
                    self._done.discard(chunk_id)
                    self._pending.append(chunk_id)
                    self.corrupt_frames += 1
                print(
                    f"warlock fabric: discarding undecodable result batch for "
                    f"chunk {chunk_id} ({type(error).__name__}: {error})",
                    file=sys.stderr,
                )
                continue
            results.update(pairs)
            if on_chunk is not None:
                on_chunk(self._chunks[chunk_id], pairs)

    def _requeue_expired(self) -> None:
        now = time.monotonic()
        with self._lock:
            expired = [
                chunk_id
                for chunk_id, (deadline, _) in self._active.items()
                if now > deadline
            ]
            for chunk_id in expired:
                del self._active[chunk_id]
                self._pending.append(chunk_id)
                self.requeued_leases += 1

    def _evaluate_one_inline(
        self,
        results: Dict[int, Any],
        on_chunk: Optional[Callable[[Tuple[int, ...], List[Tuple[int, Any]]], None]],
    ) -> None:
        """Degraded mode: evaluate one pending chunk on this thread."""
        with self._lock:
            chunk_id = self._next_pending()
            if chunk_id is None:
                # Everything left is actively leased; expiry will recycle it.
                return
            if not self.degraded:
                self.degraded = True
                print(
                    "warlock: no fabric workers reachable; evaluating locally "
                    "(degraded mode)",
                    file=sys.stderr,
                )
        from repro.engine.executor import evaluate_specs_in_context

        indices = self._chunks[chunk_id]
        candidates = evaluate_specs_in_context(self._context, indices, self._cache)
        pairs = list(zip(indices, candidates))
        with self._lock:
            self._done.add(chunk_id)
        results.update(pairs)
        if on_chunk is not None:
            on_chunk(indices, pairs)

    def _print_stats(self) -> None:
        print(
            f"warlock fabric: {len(self._done)}/{len(self._chunks)} chunk(s), "
            f"{self.requeued_leases} requeued lease(s), "
            f"{self.duplicate_results} duplicate result(s), "
            f"{self.corrupt_frames} corrupt frame(s), "
            f"{len(self._workers)} worker(s) seen"
            + (" [degraded]" if self.degraded else ""),
            file=sys.stderr,
        )

    def close(self) -> None:
        """Stop accepting connections and release the port (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._finished = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close never usefully fails
            pass
        self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "SweepCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
