"""Deterministic fault injection for the sweep fabric.

Every distributed code path in :mod:`repro.fabric` ships with a way to break
it on purpose: a :class:`FaultPlan` — parsed from the ``WARLOCK_FAULTS``
environment variable — describes which faults to inject, and a
:class:`FaultInjector` carries the mutable counters and the **seeded** RNG
that make a chaos run reproducible.  The injections cover the failure modes
the fabric claims to survive:

==================  =========================================================
``kill_after=N``    kill the worker after evaluating its N-th lease, *before*
                    the result is submitted (the lease must be re-queued)
``refuse=N``        refuse the first N connection attempts (reconnect path)
``delay=S``         sleep up to S seconds before a send (slow link)
``delay_p=P``       probability of applying the delay (default 1 when
                    ``delay`` is set)
``drop=P``          drop the message instead of sending (the peer sees EOF)
``dup=P``           send the request twice (at-least-once delivery: the
                    duplicate must dedupe, not double-count)
``corrupt=P``       flip one payload byte after the checksum was computed
                    (the frame must be rejected, never trusted)
``seed=K``          seed of the injector's private ``random.Random``
==================  =========================================================

Example: ``WARLOCK_FAULTS="kill_after=1,seed=7"`` makes a worker crash after
its first chunk — the CI chaos step runs exactly that against a two-worker
sweep and asserts the fingerprint still matches the local run.

The plan is inert by default: :meth:`FaultPlan.from_env` returns ``None``
when the variable is unset, and every injection hook no-ops on a ``None``
injector, so production paths pay one ``is None`` check.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, fields
from typing import Callable, Mapping, Optional

from repro.errors import FabricError

__all__ = ["FAULTS_ENV", "FaultInjected", "FaultInjector", "FaultPlan"]

#: Environment variable carrying the fault plan (see module docstring).
FAULTS_ENV = "WARLOCK_FAULTS"


class FaultInjected(FabricError):
    """Raised (or left to crash the process) when a planned fault fires.

    Deliberately *not* caught by the worker loop: an injected kill must look
    like a real crash — in-process test workers die as threads, the CLI
    worker process exits non-zero — so the coordinator's lease re-queue is
    exercised for real.
    """


#: Aliases accepted by :meth:`FaultPlan.parse` (short env keys -> fields).
_KEY_ALIASES = {
    "refuse": "refuse_connects",
    "delay_p": "delay_probability",
    "drop": "drop_probability",
    "dup": "duplicate_probability",
    "corrupt": "corrupt_probability",
}


@dataclass(frozen=True)
class FaultPlan:
    """The declarative half: which faults to inject, and how often."""

    #: Kill the worker after evaluating this many leases (``None`` = never).
    kill_after: Optional[int] = None
    #: Artificially refuse the first N connection attempts.
    refuse_connects: int = 0
    #: Maximum artificial delay before a send, in seconds.
    delay: float = 0.0
    #: Probability of applying the delay to any given send.
    delay_probability: float = 1.0
    #: Probability of dropping a message instead of sending it.
    drop_probability: float = 0.0
    #: Probability of sending a request twice.
    duplicate_probability: float = 0.0
    #: Probability of corrupting one payload byte of an outgoing frame.
    corrupt_probability: float = 0.0
    #: Seed of the injector's private RNG (reproducible chaos).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kill_after is not None and self.kill_after < 1:
            raise FabricError(
                f"FaultPlan.kill_after must be positive when set, "
                f"got {self.kill_after!r}"
            )
        if self.refuse_connects < 0:
            raise FabricError(
                f"FaultPlan.refuse_connects must be non-negative, "
                f"got {self.refuse_connects!r}"
            )
        if self.delay < 0:
            raise FabricError(f"FaultPlan.delay must be non-negative, got {self.delay!r}")
        for name in (
            "delay_probability",
            "drop_probability",
            "duplicate_probability",
            "corrupt_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FabricError(
                    f"FaultPlan.{name} must be within [0, 1], got {value!r}"
                )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``key=value,key=value`` environment format."""
        values: dict = {}
        known = {f.name: f for f in fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep:
                raise FabricError(
                    f"malformed {FAULTS_ENV} entry {part!r}: expected key=value"
                )
            name = _KEY_ALIASES.get(key.strip(), key.strip())
            if name not in known:
                raise FabricError(
                    f"unknown {FAULTS_ENV} key {key.strip()!r}; known keys: "
                    f"{', '.join(sorted(set(known) | set(_KEY_ALIASES)))}"
                )
            try:
                if name in ("kill_after", "refuse_connects", "seed"):
                    values[name] = int(raw)
                else:
                    values[name] = float(raw)
            except ValueError:
                raise FabricError(
                    f"invalid {FAULTS_ENV} value for {name}: {raw!r}"
                )
        return cls(**values)

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan from ``WARLOCK_FAULTS``, or ``None`` when unset/empty."""
        source = os.environ if env is None else env
        text = source.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.parse(text)

    def injector(self) -> "FaultInjector":
        """A fresh injector carrying this plan's counters and seeded RNG."""
        return FaultInjector(self)


class FaultInjector:
    """The stateful half: counters plus the plan's seeded RNG.

    One injector per worker process/thread; all hooks are called from that
    worker's own loop, so no locking is needed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: Connection attempts seen so far (drives ``refuse_connects``).
        self.connects = 0
        #: Leases fully evaluated so far (drives ``kill_after``).
        self.chunks_evaluated = 0
        #: Injection counters, for logs and test assertions.
        self.refused = 0
        self.delayed = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0

    # -- connection faults ------------------------------------------------------

    def on_connect(self) -> None:
        """Raise ``ConnectionRefusedError`` for the first N attempts."""
        self.connects += 1
        if self.connects <= self.plan.refuse_connects:
            self.refused += 1
            raise ConnectionRefusedError(
                f"injected connection refusal {self.connects}/"
                f"{self.plan.refuse_connects}"
            )

    # -- lifecycle faults -------------------------------------------------------

    def on_chunk_evaluated(self) -> None:
        """Raise :class:`FaultInjected` once ``kill_after`` chunks completed.

        Fires *after* the evaluation and *before* the result submission, the
        worst spot for the coordinator: the work is done but never delivered,
        so only the lease deadline can recover it.
        """
        self.chunks_evaluated += 1
        if (
            self.plan.kill_after is not None
            and self.chunks_evaluated >= self.plan.kill_after
        ):
            raise FaultInjected(
                f"injected worker kill after {self.chunks_evaluated} chunk(s)"
            )

    # -- message faults ---------------------------------------------------------

    def maybe_delay(self, sleep: Callable[[float], None]) -> None:
        """Sleep up to ``plan.delay`` seconds with ``delay_probability``."""
        if self.plan.delay > 0 and self.rng.random() < self.plan.delay_probability:
            self.delayed += 1
            sleep(self.rng.random() * self.plan.delay)

    def should_drop(self) -> bool:
        """True when this send should be dropped (peer sees a dead frame)."""
        if self.plan.drop_probability and self.rng.random() < self.plan.drop_probability:
            self.dropped += 1
            return True
        return False

    def should_duplicate(self) -> bool:
        """True when this request should be sent twice."""
        if (
            self.plan.duplicate_probability
            and self.rng.random() < self.plan.duplicate_probability
        ):
            self.duplicated += 1
            return True
        return False

    def transform_payload(self, payload: bytes) -> bytes:
        """Flip one byte with ``corrupt_probability`` (post-checksum)."""
        if (
            self.plan.corrupt_probability
            and payload
            and self.rng.random() < self.plan.corrupt_probability
        ):
            self.corrupted += 1
            position = self.rng.randrange(len(payload))
            flipped = payload[position] ^ 0xFF
            return payload[:position] + bytes([flipped]) + payload[position + 1 :]
        return payload
