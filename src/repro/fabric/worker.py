"""Fabric worker: pull leases, evaluate, heartbeat, submit.

A worker is the process-pool worker turned inside out: instead of receiving
chunks through a ``ProcessPoolExecutor``, it *pulls* leases from a
coordinator over TCP and pushes back the same columnar
:class:`~repro.engine.result.CandidateResultBatch` the pool protocol ships.
The evaluation itself goes through
:func:`~repro.engine.executor.evaluate_specs_in_context` with a private
worker-local :class:`~repro.engine.cache.EvaluationCache` — exactly the pool
worker's code path, which is what makes fabric results bit-identical to
local runs.

Every network interaction (the initial handshake, lease polls, result
submission) runs under the worker's :class:`~repro.fabric.retry.RetryPolicy`;
a coordinator that stays unreachable past the policy's budget ends the
worker gracefully rather than hammering a dead address.  While a lease is
being evaluated a daemon heartbeat thread renews it every
``lease_timeout / 3`` seconds — heartbeat *failures* are tolerated (the
lease just expires and is re-queued), heartbeat *cancel* replies stop the
worker at the next chunk boundary.

Fault injection hooks (:class:`~repro.fabric.faults.FaultInjector`) thread
through every step; an injected kill (``kill_after=N``) escapes this module
uncaught on purpose, so the crash is real from the coordinator's point of
view.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Any, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.faults import FaultInjector
from repro.fabric.protocol import Lease, request
from repro.fabric.retry import RetryPolicy

__all__ = ["run_worker"]

#: Sequence counter making worker ids unique within one process (tests spin
#: several worker threads in the same interpreter).
_WORKER_SEQUENCE = threading.Lock()
_WORKER_COUNT = 0


def _next_worker_id() -> str:
    global _WORKER_COUNT
    with _WORKER_SEQUENCE:
        _WORKER_COUNT += 1
        count = _WORKER_COUNT
    return f"{socket.gethostname()}-{os.getpid()}-{count}"


def _heartbeat_loop(
    address: Tuple[str, int],
    worker_id: str,
    lease: Lease,
    stop: threading.Event,
    cancelled: threading.Event,
) -> None:
    interval = max(lease.timeout / 3.0, 0.05)
    while not stop.wait(interval):
        try:
            reply = request(address, ("heartbeat", worker_id, lease.chunk_id))
        except (OSError, FabricError):
            continue  # missed heartbeat: the lease may expire, which is safe
        if reply and reply[0] == "cancel":
            cancelled.set()
            return


def run_worker(
    address: Tuple[str, int],
    *,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    cancel: Any = None,
    max_chunks: Optional[int] = None,
) -> int:
    """Serve one coordinator until it shuts down; returns chunks evaluated.

    Parameters
    ----------
    address:
        The coordinator's ``(host, port)``.
    retry:
        Policy for every network interaction (default: ~6 attempts over a
        30 second budget).  Exhausting it ends the worker gracefully.
    faults:
        Optional fault injector (``WARLOCK_FAULTS``); its ``kill_after``
        fault escapes uncaught, by design.
    cancel:
        Optional cooperative cancel signal, checked at chunk boundaries.
    max_chunks:
        Optional cap on chunks to evaluate before exiting (tests).
    """
    from repro.api.progress import cancel_requested
    from repro.engine.cache import EvaluationCache
    from repro.engine.executor import evaluate_specs_in_context
    from repro.engine.result import CandidateResultBatch

    if retry is None:
        retry = RetryPolicy(max_attempts=8, deadline=30.0)
    worker_id = _next_worker_id()

    def call(message: Any) -> Any:
        return request(address, message, retry=retry, faults=faults)

    try:
        reply = call(("hello", worker_id))
        if not reply or reply[0] != "welcome":
            raise FabricError(f"unexpected handshake reply: {reply!r}")
        reply = call(("context",))
        if not reply or reply[0] != "context":
            raise FabricError(f"unexpected context reply: {reply!r}")
        context = reply[1]
    except (OSError, FabricError) as error:
        # The coordinator never answered within the retry budget: end
        # gracefully, like a pool worker whose parent is already gone.
        print(
            f"warlock fabric worker {worker_id}: coordinator unreachable "
            f"({type(error).__name__}: {error}); giving up",
            file=sys.stderr,
        )
        return 0
    cache = EvaluationCache()  # worker-local, like a pool worker's

    evaluated = 0
    cancelled = threading.Event()
    while not cancelled.is_set() and not cancel_requested(cancel):
        if max_chunks is not None and evaluated >= max_chunks:
            break
        try:
            reply = call(("lease", worker_id))
        except (OSError, FabricError):
            break  # coordinator gone past the retry budget: graceful exit
        kind = reply[0] if reply else None
        if kind in ("shutdown", "cancel") or kind is None:
            break
        if kind == "wait":
            time.sleep(reply[1])
            continue
        if kind != "lease":
            raise FabricError(f"unexpected lease reply: {reply!r}")
        lease = reply[1]
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=_heartbeat_loop,
            args=(address, worker_id, lease, stop, cancelled),
            name="fabric-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            candidates = evaluate_specs_in_context(context, lease.indices, cache)
            batch = CandidateResultBatch.from_candidates(lease.indices, candidates)
            if faults is not None:
                # May raise FaultInjected — after the work, before the
                # submission, so only the lease deadline can recover it.
                faults.on_chunk_evaluated()
        finally:
            stop.set()
        try:
            call(("result", worker_id, lease.chunk_id, batch))
        except (OSError, FabricError):
            break  # submission lost; the lease will be re-queued
        evaluated += 1
    print(
        f"warlock fabric worker {worker_id}: {evaluated} chunk(s) evaluated",
        file=sys.stderr,
    )
    return evaluated
