"""The candidate-evaluation engine: batched, parallel, cache-aware.

:class:`EvaluationEngine` replaces the advisor's serial candidate loop.  It
expands the sweep into an :class:`~repro.engine.plan.EvaluationPlan`, executes
the per-candidate evaluations either inline (``jobs=1``) or on a process pool
(``jobs>1``), and returns the candidates in plan order.  Results are
**deterministic and identical across execution modes**: every evaluation is a
pure function of its inputs, workers return columnar
:class:`~repro.engine.result.CandidateResultBatch` chunks the parent
re-materializes by index — so ``jobs=4`` produces bit-identical
recommendations to ``jobs=1`` (the parity test matrix asserts this).

Three cost paths implement the same model (``EngineOptions.vectorize``):

* the **candidate-axis path** (``"candidates"``, default) groups each chunk
  by the specs' axis structure, stacks every group's layouts into one
  (candidate × class) numpy batch for structure derivation, and fuses the
  whole chunk — prefetch resolution and the cost model are elementwise per
  candidate — into a single kernel pass (:mod:`repro.costmodel.batch`);
* the **class-axis path** (``"classes"``) computes one candidate's access
  structures and costs for *all* query classes as numpy vectors over the
  class axis;
* the **scalar path** (``"none"``, CLI ``--no-vectorize``) runs the
  per-class reference implementation.

All three are bit-identical by construction and by test
(``tests/test_vector_parity.py``); the scalar path remains the reference and
the escape hatch.

The process pool is created per sweep with an initializer that ships the
evaluation context (schema, workload, system, config, bitmap scheme, class
matrix, specs) once per worker rather than once per task; each worker owns a
private :class:`~repro.engine.cache.EvaluationCache`, so the run-length and
evaluation passes of a candidate share their access structures inside the
worker exactly as they do inline.  If the pool cannot be created (restricted
environments without working multiprocessing), the engine falls back to the
serial path — same results, just slower.
"""

from __future__ import annotations

import pickle
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.allocation import choose_allocation, choose_allocations_batch
from repro.bitmap import BitmapScheme, design_bitmap_scheme
from repro.core.candidates import FragmentationCandidate
from repro.core.config import AdvisorConfig
from repro.costmodel import (
    AccessStructureBatch2D,
    IOCostModel,
    compute_access_structure_batch,
    compute_access_structure_batch_candidates,
    evaluate_workload_batch,
    evaluate_workload_batch_candidates,
    resolve_prefetch_setting,
    resolve_prefetch_setting_batch,
    resolve_prefetch_settings_batch_candidates,
)
from repro.errors import AdvisorError, EvaluationCancelled, FabricError
from repro.fragmentation import FragmentationSpec, build_layout
from repro.schema import StarSchema
from repro.storage import SystemParameters
from repro.workload import ClassMatrix, QueryMix
from repro.engine.cache import EvaluationCache
from repro.engine.jobs import MIN_SPECS_FOR_PARALLEL, adaptive_jobs
from repro.engine.plan import EvaluationPlan
from repro.engine.result import CandidateResultBatch
from repro.engine.signature import object_signature, stable_digest

__all__ = [
    "EngineContext",
    "EvaluationEngine",
    "evaluate_spec_in_context",
    "evaluate_specs_in_context",
    "MIN_SPECS_FOR_PARALLEL",
]

#: Serial candidate-axis chunk cap: one axis-structure group is the natural
#: batching unit, but a sweep dominated by a single structure must still hit
#: progress/cancellation boundaries at a bounded latency.  16 candidates keeps
#: near-full batch width (the kernels saturate well below that) while staying
#: close to the one-candidate granularity of the non-batched serial path.
MAX_SERIAL_GROUP_CHUNK = 16


@dataclass(frozen=True)
class EngineContext:
    """Everything a worker needs to evaluate candidates (picklable)."""

    schema: StarSchema
    workload: QueryMix
    system: SystemParameters
    config: AdvisorConfig
    fact_name: str
    bitmap_scheme: BitmapScheme
    specs: Tuple[FragmentationSpec, ...] = ()
    #: Vectorization mode of the cost sweep: ``"candidates"`` batches whole
    #: same-axis-structure chunks as (candidate × class) numpy arrays,
    #: ``"classes"`` vectorizes one candidate's class axis, ``"none"`` runs
    #: the scalar reference path.  All modes return bit-identical candidates.
    vectorize: str = "candidates"
    #: Columnar workload compilation for the vectorized modes (shipped once
    #: per worker with the context).
    class_matrix: Optional[ClassMatrix] = None


def evaluate_spec_in_context(
    context: EngineContext,
    spec: FragmentationSpec,
    cache: Optional[EvaluationCache] = None,
) -> FragmentationCandidate:
    """Fully evaluate one fragmentation candidate.

    This is the engine's unit of dispatch: layout materialization, prefetch
    resolution, the per-query-class cost sweep and the disk allocation.  Pure
    function of ``(context, spec)``; ``cache`` only memoizes, never alters.
    A warm cache returns the whole candidate without recomputing any stage.
    """
    if cache is not None:
        return cache.candidate(
            context, spec, lambda: _evaluate_spec(context, spec, cache)
        )
    return _evaluate_spec(context, spec, None)


def _evaluate_spec(
    context: EngineContext,
    spec: FragmentationSpec,
    cache: Optional[EvaluationCache],
) -> FragmentationCandidate:
    layout = build_layout(
        context.schema,
        spec,
        fact_table=context.fact_name,
        page_size_bytes=context.system.page_size_bytes,
        max_fragments=max(context.config.max_fragments, 1),
    )
    if context.vectorize != "none" and context.class_matrix is not None:
        # Vectorized class-axis sweep: one structure batch per layout (cached
        # like the scalar structures), then granule resolution and the cost
        # model as vectors over all query classes at once.
        matrix = context.class_matrix

        def compute():
            return compute_access_structure_batch(layout, matrix)

        if cache is not None:
            structures = cache.access_structure_batch(layout, matrix, compute)
        else:
            structures = compute()
        prefetch = resolve_prefetch_setting_batch(structures, matrix, context.system)
        evaluation = evaluate_workload_batch(
            layout, structures, matrix, context.system, prefetch
        )
    else:
        # Scalar reference path.  The context's workload was validated once at
        # engine/advisor construction, so the per-query re-validation is
        # skipped on this hot path.
        prefetch = resolve_prefetch_setting(
            layout,
            context.workload,
            context.bitmap_scheme,
            context.system,
            cache=cache,
            validate_queries=False,
        )
        model = IOCostModel(context.system, cache=cache, validate_queries=False)
        evaluation = model.evaluate(
            layout, context.workload, context.bitmap_scheme, prefetch
        )
    allocation = choose_allocation(
        layout,
        context.system,
        context.bitmap_scheme,
        skew_threshold_cv=context.config.allocation_skew_cv,
    )
    return FragmentationCandidate(
        spec=spec,
        layout=layout,
        bitmap_scheme=context.bitmap_scheme,
        prefetch=prefetch,
        evaluation=evaluation,
        allocation=allocation,
    )


def evaluate_specs_in_context(
    context: EngineContext,
    indices: Sequence[int],
    cache: Optional[EvaluationCache] = None,
) -> List[FragmentationCandidate]:
    """Evaluate a chunk of candidate indices, candidate-axis batched.

    In ``vectorize="candidates"`` mode the chunk is grouped by axis structure
    (:attr:`~repro.fragmentation.FragmentationSpec.axis_structure`) and each
    group's layouts are stacked into one (candidate × class) numpy batch —
    structures, prefetch resolution and costs computed in one vector pass,
    bit-identical to evaluating each spec alone (the parity suite pins this).
    Other modes fall back to the per-spec path.  Cache semantics match the
    per-spec path exactly: one candidate probe per index, one structure probe
    per evaluated layout.
    """
    if context.vectorize != "candidates" or context.class_matrix is None:
        return [
            evaluate_spec_in_context(context, context.specs[index], cache)
            for index in indices
        ]
    results: Dict[int, FragmentationCandidate] = {}
    pending: List[int] = []
    for index in indices:
        if cache is not None:
            candidate = cache.get_candidate(context, context.specs[index])
            if candidate is not None:
                results[index] = candidate
                continue
        pending.append(index)
    if pending:
        matrix = context.class_matrix
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for index in pending:
            groups.setdefault(context.specs[index].axis_structure, []).append(index)
        # Access structures are computed per axis-structure group (the unit
        # within which the per-class control flow is uniform); everything
        # downstream — prefetch resolution and the cost model — is purely
        # elementwise per candidate, so the whole chunk stacks into ONE
        # (candidate × class) batch regardless of its group mix.
        order: List[int] = []
        group_batches: List[AccessStructureBatch2D] = []
        layouts = []
        allocations = []
        for group in groups.values():
            order.extend(group)
            group_layouts = [
                build_layout(
                    context.schema,
                    context.specs[index],
                    fact_table=context.fact_name,
                    page_size_bytes=context.system.page_size_bytes,
                    max_fragments=max(context.config.max_fragments, 1),
                )
                for index in group
            ]
            layouts.extend(group_layouts)
            group_batches.append(
                _group_structure_batch(context, group_layouts, matrix, cache)
            )
            # Disk placement is batched per group as well: one LPT pass over
            # the group's padded (candidate × fragment) page matrix, bit-
            # identical to the per-candidate choose_allocation reference.
            allocations.extend(
                choose_allocations_batch(
                    group_layouts,
                    context.system,
                    context.bitmap_scheme,
                    skew_threshold_cv=context.config.allocation_skew_cv,
                )
            )
        batch = AccessStructureBatch2D.concat(group_batches)
        prefetches = resolve_prefetch_settings_batch_candidates(
            batch, matrix, context.system
        )
        evaluations = evaluate_workload_batch_candidates(
            layouts, batch, matrix, context.system, prefetches
        )
        for index, layout, prefetch, evaluation, allocation in zip(
            order, layouts, prefetches, evaluations, allocations
        ):
            spec = context.specs[index]
            candidate = FragmentationCandidate(
                spec=spec,
                layout=layout,
                bitmap_scheme=context.bitmap_scheme,
                prefetch=prefetch,
                evaluation=evaluation,
                allocation=allocation,
            )
            results[index] = candidate
            if cache is not None:
                cache.put_candidate(context, spec, candidate)
    return [results[index] for index in indices]


def _group_structure_batch(
    context: EngineContext,
    layouts: Sequence[Any],
    matrix: ClassMatrix,
    cache: Optional[EvaluationCache],
) -> AccessStructureBatch2D:
    """The stacked structure batch of one axis-structure group.

    Per-layout cache probes (same counter semantics as the class-axis path);
    all misses are computed as ONE stacked batch, and per-layout slices feed
    the cache — the slices are bit-identical to per-layout computation, so
    cross-mode and cross-run cache sharing stays exact.  On an all-miss
    (cold) group the freshly stacked batch is returned directly, so the
    common cold path never pays a slice-then-restack round trip.
    """
    if cache is None:
        return compute_access_structure_batch_candidates(layouts, matrix)
    structures: List[Any] = [None] * len(layouts)
    missing: List[int] = []
    for position, layout in enumerate(layouts):
        hit = cache.get_structure_batch(layout, matrix)
        structures[position] = hit
        if hit is None:
            missing.append(position)
    if not missing:
        return AccessStructureBatch2D.stack(structures)
    stacked = compute_access_structure_batch_candidates(
        [layouts[position] for position in missing], matrix
    )
    for j, position in enumerate(missing):
        structure = stacked.candidate(j)
        structures[position] = structure
        cache.put_structure_batch(layouts[position], matrix, structure)
    if len(missing) == len(layouts):
        return stacked
    return AccessStructureBatch2D.stack(structures)


# -- worker-side machinery ---------------------------------------------------------

_WORKER_CONTEXT: Optional[EngineContext] = None
_WORKER_CACHE: Optional[EvaluationCache] = None
_WORKER_SHIPPED_STRUCTURES: set = set()


def _initialize_worker(context: EngineContext) -> None:
    """Pool initializer: receive the context once, build a worker-local cache."""
    global _WORKER_CONTEXT, _WORKER_CACHE
    _WORKER_CONTEXT = context
    _WORKER_CACHE = EvaluationCache()
    _WORKER_SHIPPED_STRUCTURES.clear()


def _evaluate_chunk(
    indices: List[int],
) -> Tuple[CandidateResultBatch, List[Tuple[Any, Any]]]:
    """Evaluate one chunk of candidate indices inside a worker.

    The evaluated candidates are returned as one columnar
    :class:`~repro.engine.result.CandidateResultBatch` — a handful of numpy
    arrays instead of a deep per-candidate object graph, which shrinks the
    worker→parent pickling that dominates the pool's overhead — plus the
    access structures this worker memoized and has not shipped yet, so the
    parent can merge them into the shared cache (they are system-independent
    and serve later tuning studies the candidate-level entries cannot).
    """
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive, initializer always ran
        raise AdvisorError("evaluation worker used before initialization")
    candidates = evaluate_specs_in_context(context, indices, _WORKER_CACHE)
    batch = CandidateResultBatch.from_candidates(indices, candidates)
    fresh_structures = []
    for key, value in _WORKER_CACHE.structure_items():
        if key not in _WORKER_SHIPPED_STRUCTURES:
            _WORKER_SHIPPED_STRUCTURES.add(key)
            fresh_structures.append((key, value))
    return batch, fresh_structures


# -- the engine --------------------------------------------------------------------


def _cancel_requested(cancel) -> bool:
    """True when the cancel signal (token or callable) is set."""
    # Imported lazily: repro.api sits above the engine in the layer stack.
    from repro.api.progress import cancel_requested

    return cancel_requested(cancel)


class EvaluationEngine:
    """Batched candidate evaluation with a serial and a process-pool backend.

    Parameters
    ----------
    schema, workload, system, config:
        The advisor inputs.  ``config`` defaults to :class:`AdvisorConfig`.
    fact_table:
        Fact table to fragment (the schema's primary fact table when omitted).
    options:
        Execution options (:class:`repro.api.EngineOptions`): worker count,
        vectorization, caching, persistent store directory and spill policy.
        Defaults to serial, vectorized, cached, memory-only.
    cache:
        A concrete :class:`EvaluationCache` instance to share with other
        engines (tuning studies and sessions do).  ``None`` (default) creates
        a private cache when ``options.cache`` is true.  Workers use private
        caches whose entries are merged back into this one.
    jobs, vectorize, cache_dir:
        Deprecated aliases of the corresponding :class:`EngineOptions`
        fields; passing them emits an
        :class:`~repro.api.EngineOptionsDeprecationWarning`.  ``cache=False``
        is likewise a deprecated alias of ``EngineOptions(cache=False)``.
    """

    def __init__(
        self,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        fact_table: Optional[str] = None,
        jobs: Any = None,
        cache: Any = None,
        vectorize: Any = None,
        cache_dir: Any = None,
        options: Optional["EngineOptions"] = None,
    ) -> None:
        # Imported lazily: repro.api sits above the engine in the layer
        # stack (its session imports this module).
        from repro.api.options import UNSET, resolve_engine_options

        options, shared_cache = resolve_engine_options(
            options,
            owner="EvaluationEngine",
            jobs=UNSET if jobs is None else jobs,
            vectorize=UNSET if vectorize is None else vectorize,
            cache=UNSET if cache is None else cache,
            cache_dir=UNSET if cache_dir is None else cache_dir,
        )
        self.options = options
        self.schema = schema
        self.workload = workload
        self.system = system
        self.config = config if config is not None else AdvisorConfig()
        self.fact_name = schema.fact_table(fact_table).name
        # Validate the whole workload once; evaluation then runs with
        # per-query validation disabled (see evaluate_spec_in_context).
        workload.validate(schema)
        if shared_cache is not None:
            self.cache: Optional[EvaluationCache] = shared_cache
        elif options.cache:
            self.cache = EvaluationCache()
        else:
            self.cache = None
        if options.cache_dir and self.cache is not None:
            from repro.engine.store import CacheStore

            max_bytes = (
                int(options.cache_max_mb * 1024 * 1024)
                if options.cache_max_mb is not None
                else None
            )
            self.cache.attach(CacheStore(options.cache_dir, max_bytes=max_bytes))
        self._bitmap_scheme: Optional[BitmapScheme] = None
        self._matrices: Dict[str, ClassMatrix] = {}

    # -- legacy option views ----------------------------------------------------

    @property
    def jobs(self) -> Union[int, str]:
        """The configured worker count (``options.jobs``)."""
        return self.options.jobs

    @property
    def vectorize(self) -> Union[bool, str]:
        """The vectorization mode of the sweep (``options.vectorize``)."""
        return self.options.vectorize

    @property
    def cache_dir(self) -> Optional[str]:
        """The persistent store directory (``options.cache_dir``)."""
        return self.options.cache_dir

    # -- shared inputs ----------------------------------------------------------

    def bitmap_scheme(self) -> BitmapScheme:
        """The workload-driven bitmap scheme (designed once, shared by all specs)."""
        if self._bitmap_scheme is None:
            self._bitmap_scheme = design_bitmap_scheme(
                self.schema,
                self.workload,
                fact_table=self.fact_name,
                cardinality_threshold=self.config.bitmap_cardinality_threshold,
            )
        return self._bitmap_scheme

    def class_matrix(self, bitmap_scheme: Optional[BitmapScheme] = None) -> ClassMatrix:
        """The columnar workload compilation for ``bitmap_scheme``.

        Memoized per scheme — the default scheme's matrix serves the whole
        sweep, while tuning studies that exclude indexes get (and reuse)
        their own compilation — and, when a cache is attached, shared through
        it under a (schema, workload, scheme, fact) content key: sessions
        derived via ``with_delta`` that change only the *system* reuse the
        parent's compiled matrix instead of re-compiling it per edit.
        """
        scheme = bitmap_scheme if bitmap_scheme is not None else self.bitmap_scheme()
        key = object_signature(scheme)
        matrix = self._matrices.get(key)
        if matrix is None:

            def compile_matrix() -> ClassMatrix:
                return ClassMatrix.compile(
                    self.schema, self.workload, scheme, fact_table=self.fact_name
                )

            if self.cache is not None:
                shared_key = stable_digest(
                    "CompiledClassMatrix",
                    object_signature(self.schema),
                    EvaluationCache.workload_signature(self.workload),
                    key,
                    self.fact_name,
                )
                matrix = self.cache.class_matrix(shared_key, compile_matrix)
            else:
                matrix = compile_matrix()
            self._matrices[key] = matrix
        return matrix

    def context(
        self,
        specs: Sequence[FragmentationSpec] = (),
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> EngineContext:
        """The picklable evaluation context for ``specs``."""
        scheme = bitmap_scheme if bitmap_scheme is not None else self.bitmap_scheme()
        mode = self.options.vectorize_mode
        return EngineContext(
            schema=self.schema,
            workload=self.workload,
            system=self.system,
            config=self.config,
            fact_name=self.fact_name,
            bitmap_scheme=scheme,
            specs=tuple(specs),
            vectorize=mode,
            class_matrix=self.class_matrix(scheme) if mode != "none" else None,
        )

    def plan(self, specs: Sequence[FragmentationSpec]) -> EvaluationPlan:
        """Expand ``specs`` into the engine's evaluation plan."""
        return EvaluationPlan.build(specs, self.workload, self.schema)

    def resolve_jobs(self, num_candidates: int) -> int:
        """The worker count for a sweep of ``num_candidates`` candidates.

        Fixed ``jobs`` values pass through; ``"auto"`` applies the adaptive
        heuristic (CPUs available to the process, candidates per worker).
        """
        if self.jobs == "auto":
            return adaptive_jobs(num_candidates)
        return self.jobs

    # -- evaluation -------------------------------------------------------------

    def evaluate_spec(
        self,
        spec: FragmentationSpec,
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> FragmentationCandidate:
        """Evaluate a single candidate inline (always serial, cache-aware)."""
        context = self.context(bitmap_scheme=bitmap_scheme)
        return evaluate_spec_in_context(context, spec, self.cache)

    def evaluate_specs(
        self,
        specs: Sequence[FragmentationSpec],
        bitmap_scheme: Optional[BitmapScheme] = None,
        on_progress: Optional[Callable] = None,
        cancel: Any = None,
    ) -> List[FragmentationCandidate]:
        """Evaluate every candidate of ``specs``, preserving order.

        Serial and parallel backends return identical candidate lists; the
        parallel backend is only engaged when the resolved worker count
        exceeds one and the sweep is large enough to amortize the pool.

        ``on_progress`` receives one :class:`repro.api.ProgressEvent` per
        completed plan chunk (each candidate is its own chunk on the serial
        path); ``cancel`` — a :class:`repro.api.CancellationToken` or a
        zero-argument callable — is checked at the same chunk boundaries and
        raises :class:`~repro.errors.EvaluationCancelled` when set.  Entries
        cached before a cancel stay valid (they are content-addressed), so a
        retried sweep resumes warm.
        """
        plan = self.plan(specs)
        context = self.context(specs=plan.specs, bitmap_scheme=bitmap_scheme)
        jobs = self.resolve_jobs(plan.num_candidates)
        try:
            candidates = None
            degraded = False
            # Completed candidates the failing backend already produced; the
            # degraded serial retry resumes from them instead of re-evaluating.
            partial: Dict[int, FragmentationCandidate] = {}
            if self.options.fabric is not None:
                try:
                    candidates = self._evaluate_fabric(
                        plan, context, on_progress, cancel
                    )
                except (OSError, FabricError) as error:
                    # The coordinator could not bind (port taken, no network):
                    # the sweep must still complete.  Evaluation errors —
                    # WarlockError subclasses including EvaluationCancelled —
                    # still propagate; they would fail locally too.
                    print(
                        f"warlock: sweep fabric unavailable "
                        f"({type(error).__name__}: {error}); evaluating "
                        f"locally (degraded mode)",
                        file=sys.stderr,
                    )
                    degraded = True
            if (
                candidates is None
                and jobs > 1
                and plan.num_candidates >= MIN_SPECS_FOR_PARALLEL
            ):
                try:
                    candidates = self._evaluate_parallel(
                        plan, context, jobs, on_progress, cancel, partial=partial
                    )
                except (OSError, BrokenProcessPool, pickle.PicklingError) as error:
                    # Restricted environments (no /dev/shm, seccomp'd fork,
                    # workers killed on spawn): the serial path produces the
                    # same results.  Evaluation errors (WarlockError
                    # subclasses, including EvaluationCancelled) still
                    # propagate — they would fail serially too.
                    print(
                        f"warlock: process pool failed "
                        f"({type(error).__name__}: {error}); retrying the "
                        f"remaining candidates serially (degraded mode)",
                        file=sys.stderr,
                    )
                    degraded = True
            if candidates is None:
                candidates = self._evaluate_serial(
                    plan,
                    context,
                    on_progress,
                    cancel,
                    preloaded=partial or None,
                    degraded=degraded,
                )
        finally:
            # Spill new entries to the attached persistent store even when the
            # sweep was cancelled mid-way: every completed evaluation is a
            # valid content-addressed entry a retry can warm-start from.
            # (No-op without a store, with persist=False, or when the sweep
            # was answered entirely warm.)
            if self.cache is not None and self.options.persist:
                self.cache.persist()
        return candidates

    def _progress_event(
        self, plan, completed, chunk, num_chunks, label="", workers=0, degraded=False
    ):
        """Build the chunk-boundary event (lazy import, see class docstring)."""
        from repro.api.progress import ProgressEvent

        per_candidate = len(plan.query_names)
        return ProgressEvent(
            phase="evaluate",
            completed=completed,
            total=plan.num_candidates,
            chunk=chunk,
            num_chunks=num_chunks,
            completed_units=completed * per_candidate,
            total_units=plan.num_candidates * per_candidate,
            label=label,
            workers=workers,
            degraded=degraded,
        )

    def _check_cancel(self, cancel, completed: int, total: int) -> None:
        if _cancel_requested(cancel):
            raise EvaluationCancelled(
                f"evaluation cancelled after {completed}/{total} candidates"
            )

    def _evaluate_serial(
        self,
        plan: EvaluationPlan,
        context: EngineContext,
        on_progress: Optional[Callable] = None,
        cancel: Any = None,
        preloaded: Optional[Dict[int, FragmentationCandidate]] = None,
        degraded: bool = False,
    ) -> List[FragmentationCandidate]:
        # Serial chunk granularity: one axis-structure group (capped, so a
        # sweep dominated by one structure still cancels and reports at a
        # bounded latency) in candidate-axis mode, one candidate otherwise —
        # the finest boundaries at which cancellation can stop without
        # discarding work.
        #
        # ``preloaded`` carries candidates a failed parallel backend already
        # completed: the degraded retry covers only the remainder, and its
        # events are flagged so wire consumers can tell the strategy changed.
        results: List[Optional[FragmentationCandidate]] = [None] * plan.num_candidates
        pending = list(range(plan.num_candidates))
        if preloaded:
            for index, candidate in preloaded.items():
                results[index] = candidate
            pending = [index for index in pending if results[index] is None]
        if context.vectorize == "candidates" and context.class_matrix is not None:
            chunks = plan.axis_groups(
                indices=pending, max_size=MAX_SERIAL_GROUP_CHUNK
            )
        else:
            chunks = [[index] for index in pending]
        total = plan.num_candidates
        completed = total - len(pending)
        if not chunks:
            # Everything was preloaded; report one already-complete logical
            # chunk (never 0/0) so consumers still see a terminal event.
            if on_progress is not None:
                on_progress(
                    self._progress_event(plan, completed, 1, 1, degraded=degraded)
                )
            return results  # type: ignore[return-value]
        for chunk_number, chunk in enumerate(chunks, start=1):
            self._check_cancel(cancel, completed, total)
            for index, candidate in zip(
                chunk, evaluate_specs_in_context(context, chunk, self.cache)
            ):
                results[index] = candidate
            completed += len(chunk)
            if on_progress is not None:
                on_progress(
                    self._progress_event(
                        plan,
                        completed,
                        chunk_number,
                        len(chunks),
                        label=plan.specs[chunk[-1]].label,
                        degraded=degraded,
                    )
                )
        return results  # type: ignore[return-value]

    def _evaluate_parallel(
        self,
        plan: EvaluationPlan,
        context: EngineContext,
        jobs: int,
        on_progress: Optional[Callable] = None,
        cancel: Any = None,
        partial: Optional[Dict[int, FragmentationCandidate]] = None,
    ) -> List[FragmentationCandidate]:
        results: List[Optional[FragmentationCandidate]] = [None] * plan.num_candidates

        # Answer what the shared cache already holds; only misses go to the
        # pool (a fully warm sweep never pays the pool at all), and worker
        # results are inserted back so later serial calls — comparisons,
        # tuning studies — reuse them.  ``partial`` (when given) records every
        # candidate completed so far: if the pool breaks mid-sweep, the
        # caller's degraded serial retry resumes from it instead of paying
        # for the finished chunks again.
        pending = list(range(plan.num_candidates))
        if self.cache is not None:
            pending = []
            for index, spec in enumerate(plan.specs):
                candidate = self.cache.get_candidate(context, spec)
                if candidate is None:
                    pending.append(index)
                else:
                    results[index] = candidate
                    if partial is not None:
                        partial[index] = candidate
        warm = plan.num_candidates - len(pending)
        # The cancellation contract holds even for a fully-warm sweep: a
        # request whose signal is already set raises, never returns.
        self._check_cancel(cancel, warm, plan.num_candidates)
        if not pending:
            if on_progress is not None:
                # A fully-warm sweep dispatches no chunks; report one logical
                # chunk that is already complete (never 0/0 — wire consumers
                # computing chunk/num_chunks ratios must not divide by zero).
                on_progress(self._progress_event(plan, warm, 1, 1))
            return results  # type: ignore[return-value]
        # Candidate-axis mode keeps same-axis-structure candidates on one
        # worker so the kernels batch at full group width.
        chunks = plan.partition_indices(
            pending,
            jobs,
            by_axis_structure=(
                context.vectorize == "candidates" and context.class_matrix is not None
            ),
        )
        completed = warm
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            initializer=_initialize_worker,
            initargs=(context,),
        ) as pool:
            if on_progress is not None:
                # Start event: the warm candidates are already accounted for.
                on_progress(self._progress_event(plan, warm, 0, len(chunks)))
            futures = {pool.submit(_evaluate_chunk, chunk): chunk for chunk in chunks}
            done_chunks = 0
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    batch, structures = future.result()
                    label = ""
                    for index, candidate in batch.to_candidates(context):
                        results[index] = candidate
                        if partial is not None:
                            partial[index] = candidate
                        label = candidate.label
                        if self.cache is not None:
                            self.cache.put_candidate(
                                context, plan.specs[index], candidate
                            )
                    if self.cache is not None:
                        self.cache.merge_structures(structures)
                    completed += len(batch)
                    done_chunks += 1
                    if on_progress is not None:
                        on_progress(
                            self._progress_event(
                                plan, completed, done_chunks, len(chunks), label=label
                            )
                        )
                if not_done and _cancel_requested(cancel):
                    # Stop dispatching: chunks not yet started are cancelled,
                    # running ones finish in the workers but are discarded.
                    # Everything merged so far stays valid in the cache.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise EvaluationCancelled(
                        f"evaluation cancelled after {completed}/"
                        f"{plan.num_candidates} candidates"
                    )
        missing = [index for index, candidate in enumerate(results) if candidate is None]
        if missing:  # pragma: no cover - defensive, wait() either returns or raises
            raise AdvisorError(f"parallel evaluation lost candidates {missing}")
        return results  # type: ignore[return-value]

    def _evaluate_fabric(
        self,
        plan: EvaluationPlan,
        context: EngineContext,
        on_progress: Optional[Callable] = None,
        cancel: Any = None,
    ) -> List[FragmentationCandidate]:
        """Lease the sweep's chunks to distributed fabric workers.

        Chunking happens here, deterministically, *before* distribution —
        the same axis-structure groups the serial path walks — so the result
        set is independent of how many workers serve the sweep (or crash
        mid-way).  The coordinator re-queues lost leases and degrades to
        local inline evaluation when no workers are reachable; either way
        this method returns the same candidates the local paths produce.
        """
        # Imported lazily: repro.fabric sits above the engine in the layer
        # stack (it ships EngineContext values over its wire).
        from repro.fabric.coordinator import SweepCoordinator
        from repro.fabric.protocol import parse_address

        results: List[Optional[FragmentationCandidate]] = [None] * plan.num_candidates
        pending = list(range(plan.num_candidates))
        if self.cache is not None:
            pending = []
            for index, spec in enumerate(plan.specs):
                candidate = self.cache.get_candidate(context, spec)
                if candidate is None:
                    pending.append(index)
                else:
                    results[index] = candidate
        warm = plan.num_candidates - len(pending)
        self._check_cancel(cancel, warm, plan.num_candidates)
        if not pending:
            if on_progress is not None:
                on_progress(self._progress_event(plan, warm, 1, 1))
            return results  # type: ignore[return-value]
        if context.vectorize == "candidates" and context.class_matrix is not None:
            chunks = plan.axis_groups(indices=pending, max_size=MAX_SERIAL_GROUP_CHUNK)
        else:
            chunks = [[index] for index in pending]
        host, port = parse_address(self.options.fabric)
        coordinator = SweepCoordinator(
            context,
            chunks,
            host=host,
            port=port,
            lease_timeout=self.options.fabric_lease,
            grace=self.options.fabric_grace,
            cache=self.cache,
        )
        completed = warm
        done_chunks = 0
        try:
            if on_progress is not None:
                on_progress(
                    self._progress_event(
                        plan,
                        warm,
                        0,
                        len(chunks),
                        workers=coordinator.live_workers(),
                    )
                )

            def on_chunk(chunk, pairs):
                nonlocal completed, done_chunks
                label = ""
                for index, candidate in pairs:
                    results[index] = candidate
                    label = candidate.label
                    if self.cache is not None:
                        self.cache.put_candidate(context, plan.specs[index], candidate)
                completed += len(pairs)
                done_chunks += 1
                if on_progress is not None:
                    on_progress(
                        self._progress_event(
                            plan,
                            completed,
                            done_chunks,
                            len(chunks),
                            label=label,
                            workers=coordinator.live_workers(),
                            degraded=coordinator.degraded,
                        )
                    )

            coordinator.run(cancel=cancel, on_chunk=on_chunk)
        finally:
            coordinator.close()
        missing = [index for index, candidate in enumerate(results) if candidate is None]
        if missing:  # pragma: no cover - defensive, run() returns or raises
            raise AdvisorError(f"fabric evaluation lost candidates {missing}")
        return results  # type: ignore[return-value]
