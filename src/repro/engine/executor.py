"""The candidate-evaluation engine: batched, parallel, cache-aware.

:class:`EvaluationEngine` replaces the advisor's serial candidate loop.  It
expands the sweep into an :class:`~repro.engine.plan.EvaluationPlan`, executes
the per-candidate evaluations either inline (``jobs=1``) or on a process pool
(``jobs>1``), and returns the candidates in plan order.  Results are
**deterministic and identical across execution modes**: every evaluation is a
pure function of its inputs, workers return columnar
:class:`~repro.engine.result.CandidateResultBatch` chunks the parent
re-materializes by index — so ``jobs=4`` produces bit-identical
recommendations to ``jobs=1`` (the parity test matrix asserts this).

Two cost paths implement the same model:

* the **vectorized path** (default) compiles the workload into a columnar
  :class:`~repro.workload.ClassMatrix` and computes one candidate's access
  structures and costs for *all* query classes as numpy vectors over the
  class axis (:mod:`repro.costmodel.batch`);
* the **scalar path** (``vectorize=False``) runs the per-class reference
  implementation.

The two are bit-identical by construction and by test
(``tests/test_vector_parity.py``); the scalar path remains the reference and
the escape hatch (CLI ``--no-vectorize``).

The process pool is created per sweep with an initializer that ships the
evaluation context (schema, workload, system, config, bitmap scheme, class
matrix, specs) once per worker rather than once per task; each worker owns a
private :class:`~repro.engine.cache.EvaluationCache`, so the run-length and
evaluation passes of a candidate share their access structures inside the
worker exactly as they do inline.  If the pool cannot be created (restricted
environments without working multiprocessing), the engine falls back to the
serial path — same results, just slower.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.allocation import choose_allocation
from repro.bitmap import BitmapScheme, design_bitmap_scheme
from repro.core.candidates import FragmentationCandidate
from repro.core.config import AdvisorConfig
from repro.costmodel import (
    IOCostModel,
    compute_access_structure_batch,
    evaluate_workload_batch,
    resolve_prefetch_setting,
    resolve_prefetch_setting_batch,
)
from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec, build_layout
from repro.schema import StarSchema
from repro.storage import SystemParameters
from repro.workload import ClassMatrix, QueryMix
from repro.engine.cache import EvaluationCache
from repro.engine.jobs import MIN_SPECS_FOR_PARALLEL, adaptive_jobs
from repro.engine.plan import EvaluationPlan
from repro.engine.result import CandidateResultBatch
from repro.engine.signature import object_signature

__all__ = [
    "EngineContext",
    "EvaluationEngine",
    "evaluate_spec_in_context",
    "MIN_SPECS_FOR_PARALLEL",
]


@dataclass(frozen=True)
class EngineContext:
    """Everything a worker needs to evaluate candidates (picklable)."""

    schema: StarSchema
    workload: QueryMix
    system: SystemParameters
    config: AdvisorConfig
    fact_name: str
    bitmap_scheme: BitmapScheme
    specs: Tuple[FragmentationSpec, ...] = ()
    #: Evaluate the per-class sweep vectorized over the class axis.  Requires
    #: ``class_matrix``; both paths return bit-identical candidates.
    vectorize: bool = True
    #: Columnar workload compilation for the vectorized path (shipped once
    #: per worker with the context).
    class_matrix: Optional[ClassMatrix] = None


def evaluate_spec_in_context(
    context: EngineContext,
    spec: FragmentationSpec,
    cache: Optional[EvaluationCache] = None,
) -> FragmentationCandidate:
    """Fully evaluate one fragmentation candidate.

    This is the engine's unit of dispatch: layout materialization, prefetch
    resolution, the per-query-class cost sweep and the disk allocation.  Pure
    function of ``(context, spec)``; ``cache`` only memoizes, never alters.
    A warm cache returns the whole candidate without recomputing any stage.
    """
    if cache is not None:
        return cache.candidate(
            context, spec, lambda: _evaluate_spec(context, spec, cache)
        )
    return _evaluate_spec(context, spec, None)


def _evaluate_spec(
    context: EngineContext,
    spec: FragmentationSpec,
    cache: Optional[EvaluationCache],
) -> FragmentationCandidate:
    layout = build_layout(
        context.schema,
        spec,
        fact_table=context.fact_name,
        page_size_bytes=context.system.page_size_bytes,
        max_fragments=max(context.config.max_fragments, 1),
    )
    if context.vectorize and context.class_matrix is not None:
        # Vectorized class-axis sweep: one structure batch per layout (cached
        # like the scalar structures), then granule resolution and the cost
        # model as vectors over all query classes at once.
        matrix = context.class_matrix

        def compute():
            return compute_access_structure_batch(layout, matrix)

        if cache is not None:
            structures = cache.access_structure_batch(layout, matrix, compute)
        else:
            structures = compute()
        prefetch = resolve_prefetch_setting_batch(structures, matrix, context.system)
        evaluation = evaluate_workload_batch(
            layout, structures, matrix, context.system, prefetch
        )
    else:
        # Scalar reference path.  The context's workload was validated once at
        # engine/advisor construction, so the per-query re-validation is
        # skipped on this hot path.
        prefetch = resolve_prefetch_setting(
            layout,
            context.workload,
            context.bitmap_scheme,
            context.system,
            cache=cache,
            validate_queries=False,
        )
        model = IOCostModel(context.system, cache=cache, validate_queries=False)
        evaluation = model.evaluate(
            layout, context.workload, context.bitmap_scheme, prefetch
        )
    allocation = choose_allocation(
        layout,
        context.system,
        context.bitmap_scheme,
        skew_threshold_cv=context.config.allocation_skew_cv,
    )
    return FragmentationCandidate(
        spec=spec,
        layout=layout,
        bitmap_scheme=context.bitmap_scheme,
        prefetch=prefetch,
        evaluation=evaluation,
        allocation=allocation,
    )


# -- worker-side machinery ---------------------------------------------------------

_WORKER_CONTEXT: Optional[EngineContext] = None
_WORKER_CACHE: Optional[EvaluationCache] = None
_WORKER_SHIPPED_STRUCTURES: set = set()


def _initialize_worker(context: EngineContext) -> None:
    """Pool initializer: receive the context once, build a worker-local cache."""
    global _WORKER_CONTEXT, _WORKER_CACHE
    _WORKER_CONTEXT = context
    _WORKER_CACHE = EvaluationCache()
    _WORKER_SHIPPED_STRUCTURES.clear()


def _evaluate_chunk(
    indices: List[int],
) -> Tuple[CandidateResultBatch, List[Tuple[Any, Any]]]:
    """Evaluate one chunk of candidate indices inside a worker.

    The evaluated candidates are returned as one columnar
    :class:`~repro.engine.result.CandidateResultBatch` — a handful of numpy
    arrays instead of a deep per-candidate object graph, which shrinks the
    worker→parent pickling that dominates the pool's overhead — plus the
    access structures this worker memoized and has not shipped yet, so the
    parent can merge them into the shared cache (they are system-independent
    and serve later tuning studies the candidate-level entries cannot).
    """
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive, initializer always ran
        raise AdvisorError("evaluation worker used before initialization")
    candidates = [
        evaluate_spec_in_context(context, context.specs[index], _WORKER_CACHE)
        for index in indices
    ]
    batch = CandidateResultBatch.from_candidates(indices, candidates)
    fresh_structures = []
    for key, value in _WORKER_CACHE.structure_items():
        if key not in _WORKER_SHIPPED_STRUCTURES:
            _WORKER_SHIPPED_STRUCTURES.add(key)
            fresh_structures.append((key, value))
    return batch, fresh_structures


# -- the engine --------------------------------------------------------------------


class EvaluationEngine:
    """Batched candidate evaluation with a serial and a process-pool backend.

    Parameters
    ----------
    schema, workload, system, config:
        The advisor inputs.  ``config`` defaults to :class:`AdvisorConfig`.
    fact_table:
        Fact table to fragment (the schema's primary fact table when omitted).
    jobs:
        Worker processes; ``1`` (default) evaluates inline.  Values above one
        enable the process pool once the sweep is large enough to amortize it
        (:data:`MIN_SPECS_FOR_PARALLEL`).  ``"auto"`` picks the worker count
        per sweep from the available CPUs and the candidate count
        (:func:`repro.engine.jobs.adaptive_jobs`).
    cache:
        Evaluation cache.  ``None`` (default) creates a private one; pass a
        shared instance to reuse structures across engines (tuning studies
        do), or ``False`` to disable memoization entirely (the benchmark's
        seed-equivalent baseline).  Workers use private caches whose entries
        are merged back into the shared cache.
    vectorize:
        ``True`` (default) evaluates each candidate's per-class sweep as
        numpy vectors over the class axis; ``False`` runs the scalar
        reference path.  Results are bit-identical either way.
    cache_dir:
        Directory of a persistent :class:`~repro.engine.store.CacheStore`.
        When given (and caching is enabled) the cache warm-starts from the
        store at construction and spills back after every sweep, so a second
        process on the same inputs answers the whole sweep from disk.
        Corrupted or version-mismatched stores are silently ignored; results
        never depend on the store's content.
    """

    def __init__(
        self,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        fact_table: Optional[str] = None,
        jobs: Union[int, str] = 1,
        cache=None,
        vectorize: bool = True,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs != "auto" and (not isinstance(jobs, int) or jobs < 1):
            raise AdvisorError(
                f'jobs must be a positive integer or "auto", got {jobs!r}'
            )
        self.schema = schema
        self.workload = workload
        self.system = system
        self.config = config if config is not None else AdvisorConfig()
        self.fact_name = schema.fact_table(fact_table).name
        # Validate the whole workload once; evaluation then runs with
        # per-query validation disabled (see evaluate_spec_in_context).
        workload.validate(schema)
        self.jobs = jobs
        self.vectorize = vectorize
        if cache is False:
            self.cache: Optional[EvaluationCache] = None
        elif cache is None:
            self.cache = EvaluationCache()
        else:
            self.cache = cache
        self.cache_dir = cache_dir
        if cache_dir and self.cache is not None:
            from repro.engine.store import CacheStore

            self.cache.attach(CacheStore(cache_dir))
        self._bitmap_scheme: Optional[BitmapScheme] = None
        self._matrices: Dict[str, ClassMatrix] = {}

    # -- shared inputs ----------------------------------------------------------

    def bitmap_scheme(self) -> BitmapScheme:
        """The workload-driven bitmap scheme (designed once, shared by all specs)."""
        if self._bitmap_scheme is None:
            self._bitmap_scheme = design_bitmap_scheme(
                self.schema,
                self.workload,
                fact_table=self.fact_name,
                cardinality_threshold=self.config.bitmap_cardinality_threshold,
            )
        return self._bitmap_scheme

    def class_matrix(self, bitmap_scheme: Optional[BitmapScheme] = None) -> ClassMatrix:
        """The columnar workload compilation for ``bitmap_scheme``.

        Memoized per scheme: the default scheme's matrix serves the whole
        sweep, while tuning studies that exclude indexes get (and reuse)
        their own compilation.
        """
        scheme = bitmap_scheme if bitmap_scheme is not None else self.bitmap_scheme()
        key = object_signature(scheme)
        matrix = self._matrices.get(key)
        if matrix is None:
            matrix = ClassMatrix.compile(
                self.schema, self.workload, scheme, fact_table=self.fact_name
            )
            self._matrices[key] = matrix
        return matrix

    def context(
        self,
        specs: Sequence[FragmentationSpec] = (),
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> EngineContext:
        """The picklable evaluation context for ``specs``."""
        scheme = bitmap_scheme if bitmap_scheme is not None else self.bitmap_scheme()
        return EngineContext(
            schema=self.schema,
            workload=self.workload,
            system=self.system,
            config=self.config,
            fact_name=self.fact_name,
            bitmap_scheme=scheme,
            specs=tuple(specs),
            vectorize=self.vectorize,
            class_matrix=self.class_matrix(scheme) if self.vectorize else None,
        )

    def plan(self, specs: Sequence[FragmentationSpec]) -> EvaluationPlan:
        """Expand ``specs`` into the engine's evaluation plan."""
        return EvaluationPlan.build(specs, self.workload, self.schema)

    def resolve_jobs(self, num_candidates: int) -> int:
        """The worker count for a sweep of ``num_candidates`` candidates.

        Fixed ``jobs`` values pass through; ``"auto"`` applies the adaptive
        heuristic (CPUs available to the process, candidates per worker).
        """
        if self.jobs == "auto":
            return adaptive_jobs(num_candidates)
        return self.jobs

    # -- evaluation -------------------------------------------------------------

    def evaluate_spec(
        self,
        spec: FragmentationSpec,
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> FragmentationCandidate:
        """Evaluate a single candidate inline (always serial, cache-aware)."""
        context = self.context(bitmap_scheme=bitmap_scheme)
        return evaluate_spec_in_context(context, spec, self.cache)

    def evaluate_specs(
        self,
        specs: Sequence[FragmentationSpec],
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> List[FragmentationCandidate]:
        """Evaluate every candidate of ``specs``, preserving order.

        Serial and parallel backends return identical candidate lists; the
        parallel backend is only engaged when the resolved worker count
        exceeds one and the sweep is large enough to amortize the pool.
        """
        plan = self.plan(specs)
        context = self.context(specs=plan.specs, bitmap_scheme=bitmap_scheme)
        jobs = self.resolve_jobs(plan.num_candidates)
        candidates = None
        if jobs > 1 and plan.num_candidates >= MIN_SPECS_FOR_PARALLEL:
            try:
                candidates = self._evaluate_parallel(plan, context, jobs)
            except (OSError, BrokenProcessPool, pickle.PicklingError):
                # Restricted environments (no /dev/shm, seccomp'd fork,
                # workers killed on spawn): the serial path produces the same
                # results.  Evaluation errors (WarlockError subclasses) still
                # propagate — they would fail serially too.
                pass
        if candidates is None:
            candidates = self._evaluate_serial(plan, context)
        # Spill the sweep's new entries to the attached persistent store (a
        # no-op without one, or when the sweep was answered entirely warm).
        if self.cache is not None:
            self.cache.persist()
        return candidates

    def _evaluate_serial(
        self, plan: EvaluationPlan, context: EngineContext
    ) -> List[FragmentationCandidate]:
        return [
            evaluate_spec_in_context(context, spec, self.cache) for spec in plan.specs
        ]

    def _evaluate_parallel(
        self, plan: EvaluationPlan, context: EngineContext, jobs: int
    ) -> List[FragmentationCandidate]:
        results: List[Optional[FragmentationCandidate]] = [None] * plan.num_candidates

        # Answer what the shared cache already holds; only misses go to the
        # pool (a fully warm sweep never pays the pool at all), and worker
        # results are inserted back so later serial calls — comparisons,
        # tuning studies — reuse them.
        pending = list(range(plan.num_candidates))
        if self.cache is not None:
            pending = []
            for index, spec in enumerate(plan.specs):
                candidate = self.cache.get_candidate(context, spec)
                if candidate is None:
                    pending.append(index)
                else:
                    results[index] = candidate
        if not pending:
            return results  # type: ignore[return-value]

        chunks = plan.partition_indices(pending, jobs)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            initializer=_initialize_worker,
            initargs=(context,),
        ) as pool:
            for batch, structures in pool.map(_evaluate_chunk, chunks):
                for index, candidate in batch.to_candidates(context):
                    results[index] = candidate
                    if self.cache is not None:
                        self.cache.put_candidate(context, plan.specs[index], candidate)
                if self.cache is not None:
                    self.cache.merge_structures(structures)
        missing = [index for index, candidate in enumerate(results) if candidate is None]
        if missing:  # pragma: no cover - defensive, map() either returns or raises
            raise AdvisorError(f"parallel evaluation lost candidates {missing}")
        return results  # type: ignore[return-value]
