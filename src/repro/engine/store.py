"""Persistent on-disk spill of the evaluation cache (warm-start across processes).

Every CLI invocation of the interactive recommend → analyze → tune → simulate
loop used to rebuild the whole evaluation from nothing, because the
:class:`~repro.engine.cache.EvaluationCache` died with the process.  The cache
is content-addressed (sha1 signatures over frozen dataclasses,
:mod:`repro.engine.signature`), so its entries are valid across processes by
construction: a :class:`CacheStore` spills them under a cache directory and a
later process reloads them, making repeated invocations and tuning sessions
start warm.

On-disk format (version 2)
--------------------------

``entries.sqlite``
    One row per *scalar* access-structure entry (arbitrary frozen-dataclass
    graphs, pickled) and per candidate-exclusion report (JSON): the cache key
    (salt-prefixed, JSON-encoded tuple of content signatures) plus the
    payload.  Sqlite gives atomic reads over the many small blobs.

``structures.npz``
    The class-axis structure batches
    (:class:`~repro.costmodel.batch.AccessStructureBatch`).  They are plain
    numpy columns plus a little string metadata, so they spill to a single
    ``.npz`` (CRC-checked zip of ``.npy`` members) — binary-exact floats, no
    pickle needed.

``candidates.npz``
    Whole-candidate entries as **columnar groups**: all candidates sharing
    one (query classes, weights) shape stack into one metric cube, one disk
    plane, two flag planes and two concatenated allocation vectors, plus one
    JSON metadata member per group.  This replaces the per-candidate pickled
    blob of format 1: a warm process reads a handful of bulk numpy arrays
    instead of unpickling one object graph per spec, and the loaded entries
    stay *deferred* (:class:`~repro.engine.result.CandidateColumns`) until a
    warm probe materializes them under the probing engine context.

Invalidation and trust
----------------------

All files carry a **salt**: a digest over the store format version and the
``repro`` package version.  Every persisted key is prefixed with the same
salt.  A store written by a different format or package version, a truncated
or corrupted file, or an entry that fails to decode is **silently ignored,
never trusted** — the evaluation simply runs cold and overwrites the store
with fresh content.  Persistence is strictly best-effort: no store failure
(unreadable directory, read-only filesystem, concurrent writer) may ever
change a result or crash the advisor, only forfeit the warm start.

Concurrency
-----------

Saves are atomic: each file is fully written to a temporary sibling and then
``os.replace``'d into place, so concurrent CLI invocations sharing a cache
directory either see the complete previous store or the complete new one,
never a partial file.  Writers are last-one-wins; since every save dumps the
writer's whole in-memory cache (which includes everything it loaded), the
surviving store is always a superset of that writer's view.

The scalar structure entries are loaded with :mod:`pickle`, so a cache
directory must be trusted to the same degree as the code itself — point
``--cache-dir`` at a directory you own, not at a shared download location.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import tempfile
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.engine.signature import stable_digest

__all__ = [
    "STORE_FORMAT_VERSION",
    "ENTRIES_FILENAME",
    "BATCHES_FILENAME",
    "CANDIDATES_FILENAME",
    "CacheStore",
    "store_salt",
]

#: Bump on any incompatible change to the on-disk layout; old stores are then
#: silently ignored (and overwritten on the next save).  Version 2 introduced
#: the columnar candidate file and the exclusion-report rows.
STORE_FORMAT_VERSION = 2

#: Scalar-structure and exclusion-report entries (sqlite).
ENTRIES_FILENAME = "entries.sqlite"
#: Class-axis structure batches (single npz, numpy columns).
BATCHES_FILENAME = "structures.npz"
#: Whole-candidate entries (single npz, columnar groups).
CANDIDATES_FILENAME = "candidates.npz"

#: numpy-array fields of :class:`~repro.costmodel.batch.AccessStructureBatch`,
#: spilled verbatim as npz columns (dtypes preserved, floats binary-exact).
_BATCH_ARRAY_FIELDS = (
    "fragments_accessed",
    "rows_in_accessed_fragments",
    "qualifying_rows",
    "rows_per_fragment",
    "fact_pages_per_fragment",
    "forced_full_scan",
    "has_residuals",
    "bitmap_touched_per_fragment",
    "bitmap_density",
    "index_class",
    "index_pages",
    "bitmap_pages_per_fragment",
    "bitmap_index_counts",
)


def store_salt() -> str:
    """The store's version salt: format version + ``repro`` package version.

    Prefixes every persisted key and is checked file-wide on load, so a store
    written by any other format or package version can never be trusted by
    accident.
    """
    # Imported lazily: repro/__init__ imports repro.engine before defining
    # __version__, so a module-level import would see a partial package.
    from repro import __version__

    return stable_digest("warlock-cache-store", str(STORE_FORMAT_VERSION), __version__)


def _encode_key(salt: str, key: Tuple[str, ...]) -> str:
    """Serialize a cache key tuple, prefixed with the version salt."""
    return json.dumps([salt, *key])


def _decode_key(salt: str, text: str) -> Optional[Tuple[str, ...]]:
    """Parse a persisted key; ``None`` when malformed or salted differently."""
    parts = json.loads(text)
    if (
        not isinstance(parts, list)
        or len(parts) < 2
        or parts[0] != salt
        or not all(isinstance(part, str) for part in parts)
    ):
        return None
    return tuple(parts[1:])


class CacheStore:
    """One persistent cache directory (see the module docstring for format).

    The store is deliberately stateless between calls: :meth:`load` reads
    whatever the directory currently holds, :meth:`save` atomically replaces
    it.  All failures — missing directory, corruption, version mismatch,
    unwritable filesystem — degrade to "no store", never to an error.
    """

    def __init__(self, cache_dir) -> None:
        self.cache_dir = os.fspath(cache_dir)
        self.salt = store_salt()

    @property
    def entries_path(self) -> str:
        """Path of the sqlite entry file (scalar structures + reports)."""
        return os.path.join(self.cache_dir, ENTRIES_FILENAME)

    @property
    def batches_path(self) -> str:
        """Path of the npz batch file (class-axis structure batches)."""
        return os.path.join(self.cache_dir, BATCHES_FILENAME)

    @property
    def candidates_path(self) -> str:
        """Path of the npz candidate file (columnar candidate groups)."""
        return os.path.join(self.cache_dir, CANDIDATES_FILENAME)

    # -- load -------------------------------------------------------------------

    def load(
        self,
    ) -> Tuple[
        Dict[Tuple[str, ...], Any],
        Dict[Tuple[str, ...], Any],
        Dict[Tuple[str, ...], Any],
    ]:
        """Read the store: ``(structures, candidates, exclusion reports)``.

        Structure entries cover both the scalar per-query structures and the
        class-axis batches (they share one cache dict); candidate entries are
        deferred :class:`~repro.engine.result.CandidateColumns` records.
        Returns empty dicts for anything missing, corrupted or
        version-mismatched.
        """
        structures = self._load_batches()
        scalar, reports = self._load_entries()
        structures.update(scalar)
        candidates = self._load_candidates()
        return structures, candidates, reports

    def _load_entries(self):
        structures: Dict[Tuple[str, ...], Any] = {}
        reports: Dict[Tuple[str, ...], Any] = {}
        path = self.entries_path
        try:
            if not os.path.exists(path):
                return {}, {}
            # Read-only URI: never create or lock-upgrade the file while a
            # concurrent invocation may be replacing it.
            connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
            try:
                rows = connection.execute(
                    "SELECT value FROM meta WHERE key = 'salt'"
                ).fetchall()
                if not rows or rows[0][0] != self.salt:
                    return {}, {}
                for key_text, kind, payload in connection.execute(
                    "SELECT key, kind, payload FROM entries"
                ):
                    # Per-entry skip: one undecodable row (truncated pickle,
                    # class drift in a dev checkout) forfeits that entry only,
                    # not the whole warm start.
                    try:
                        key = _decode_key(self.salt, key_text)
                        if key is None:
                            continue
                        if kind == "report":
                            reports[key] = json.loads(payload.decode("utf-8"))
                        else:
                            structures[key] = pickle.loads(payload)
                    except Exception:
                        continue
            finally:
                connection.close()
        except Exception:
            # Stale format, truncated file, undecodable entry: never trusted.
            return {}, {}
        return structures, reports

    def _load_batches(self) -> Dict[Tuple[str, ...], Any]:
        from repro.costmodel.batch import AccessStructureBatch

        entries: Dict[Tuple[str, ...], Any] = {}
        path = self.batches_path
        try:
            if not os.path.exists(path):
                return {}
            with np.load(path, allow_pickle=False) as data:
                if str(data["__salt__"][()]) != self.salt:
                    return {}
                keys = json.loads(str(data["__index__"][()]))
                for i, parts in enumerate(keys):
                    # Per-entry skip, as for the sqlite rows.
                    try:
                        key = _decode_key(self.salt, json.dumps(parts))
                        if key is None:
                            continue
                        meta = json.loads(str(data[f"{i}/meta"][()]))
                        arrays = {
                            name: data[f"{i}/{name}"] for name in _BATCH_ARRAY_FIELDS
                        }
                        entries[key] = AccessStructureBatch(
                            query_names=tuple(meta["query_names"]),
                            fragments_total=int(meta["fragments_total"]),
                            index_attributes=tuple(
                                (dimension, level)
                                for dimension, level in meta["index_attributes"]
                            ),
                            **arrays,
                        )
                    except Exception:
                        continue
        except Exception:
            return {}
        return entries

    def _load_candidates(self) -> Dict[Tuple[str, ...], Any]:
        from repro.costmodel import EvaluationColumns
        from repro.engine.result import CandidateColumns

        entries: Dict[Tuple[str, ...], Any] = {}
        path = self.candidates_path
        try:
            if not os.path.exists(path):
                return {}
            with np.load(path, allow_pickle=False) as data:
                if str(data["__salt__"][()]) != self.salt:
                    return {}
                num_groups = int(data["__groups__"][()])
                for g in range(num_groups):
                    # Per-group skip: one bad group forfeits its candidates
                    # only, not the whole warm start.
                    try:
                        meta = json.loads(str(data[f"c{g}/meta"][()]))
                        metrics = data[f"c{g}/metrics"]
                        disks = data[f"c{g}/disks"]
                        sequential = data[f"c{g}/sequential"]
                        forced = data[f"c{g}/forced"]
                        alloc_disks = data[f"c{g}/alloc_disks"]
                        alloc_pages = data[f"c{g}/alloc_pages"]
                        query_names = tuple(meta["query_names"])
                        weights = tuple(meta["weights"])
                        offsets = meta["alloc_offsets"]
                    except Exception:
                        continue
                    for j, key_parts in enumerate(meta["keys"]):
                        try:
                            key = _decode_key(self.salt, json.dumps(key_parts))
                            if key is None:
                                continue
                            entries[key] = CandidateColumns(
                                columns=EvaluationColumns(
                                    query_names=query_names,
                                    weights=weights,
                                    fragments_total=int(
                                        meta["fragments_total"][j]
                                    ),
                                    metrics=metrics[j],
                                    disks_used=disks[j],
                                    sequential=sequential[j],
                                    forced=forced[j],
                                    attributes_used=tuple(
                                        tuple(
                                            tuple(pair)
                                            for pair in class_attributes
                                        )
                                        for class_attributes in meta[
                                            "attributes_used"
                                        ][j]
                                    ),
                                ),
                                prefetch=tuple(meta["prefetch"][j]),
                                allocation_scheme=meta["allocation_schemes"][j],
                                allocation_disks=alloc_disks[
                                    offsets[j] : offsets[j + 1]
                                ],
                                allocation_pages=alloc_pages[
                                    offsets[j] : offsets[j + 1]
                                ],
                            )
                        except Exception:
                            continue
        except Exception:
            return {}
        return entries

    # -- save -------------------------------------------------------------------

    def save(
        self,
        structures: Mapping[Tuple[str, ...], Any],
        candidates: Mapping[Tuple[str, ...], Any],
        reports: Optional[Mapping[Tuple[str, ...], Any]] = None,
    ) -> Optional[int]:
        """Atomically replace the store with the given cache content.

        Returns the number of entries written, or ``None`` when the store
        could not be written (best-effort: the evaluation already succeeded,
        only the warm start of the *next* process is forfeited).
        """
        from repro.costmodel.batch import AccessStructureBatch

        reports = {} if reports is None else reports
        scalar: Dict[Tuple[str, ...], Any] = {}
        batches: Dict[Tuple[str, ...], Any] = {}
        for key, value in structures.items():
            (batches if isinstance(value, AccessStructureBatch) else scalar)[key] = value
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            self._save_entries(scalar, reports)
            self._save_batches(batches)
            self._save_candidates(candidates)
        except Exception:
            return None
        return len(scalar) + len(candidates) + len(batches) + len(reports)

    def _atomic_write(self, final_path: str, write):
        """Run ``write(tmp_path)`` then rename the temp file into place."""
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".store-", suffix=".tmp"
        )
        os.close(fd)
        try:
            write(tmp_path)
            os.replace(tmp_path, final_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _save_entries(self, structures, reports) -> None:
        def write(tmp_path: str) -> None:
            connection = sqlite3.connect(tmp_path)
            try:
                connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
                connection.execute(
                    "CREATE TABLE entries "
                    "(key TEXT PRIMARY KEY, kind TEXT NOT NULL, payload BLOB NOT NULL)"
                )
                connection.execute(
                    "INSERT INTO meta VALUES ('salt', ?)", (self.salt,)
                )
                rows = [
                    (
                        _encode_key(self.salt, key),
                        "structure",
                        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                    for key, value in structures.items()
                ]
                rows.extend(
                    (
                        _encode_key(self.salt, key),
                        "report",
                        json.dumps(payload).encode("utf-8"),
                    )
                    for key, payload in reports.items()
                )
                connection.executemany(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?)", rows
                )
                connection.commit()
            finally:
                connection.close()

        self._atomic_write(self.entries_path, write)

    def _save_batches(self, batches) -> None:
        arrays: Dict[str, np.ndarray] = {
            "__salt__": np.array(self.salt),
            "__index__": np.array(
                json.dumps([[self.salt, *key] for key in batches])
            ),
        }
        for i, batch in enumerate(batches.values()):
            arrays[f"{i}/meta"] = np.array(
                json.dumps(
                    {
                        "query_names": list(batch.query_names),
                        "fragments_total": batch.fragments_total,
                        "index_attributes": [
                            list(pair) for pair in batch.index_attributes
                        ],
                    }
                )
            )
            for name in _BATCH_ARRAY_FIELDS:
                arrays[f"{i}/{name}"] = getattr(batch, name)

        def write(tmp_path: str) -> None:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **arrays)

        self._atomic_write(self.batches_path, write)

    def _save_candidates(self, candidates) -> None:
        from repro.engine.result import CandidateColumns

        # Group the candidates by class shape: every group stacks into one
        # metric cube plus concatenated allocation vectors.  Weight floats
        # round-trip exactly through JSON (repr-based shortest encoding);
        # every metric float stays binary in the npz.
        groups: Dict[Tuple, list] = {}
        for key, value in candidates.items():
            record = (
                value
                if isinstance(value, CandidateColumns)
                else CandidateColumns.from_candidate(value)
            )
            shape = (record.columns.query_names, record.columns.weights)
            groups.setdefault(shape, []).append((key, record))

        arrays: Dict[str, np.ndarray] = {
            "__salt__": np.array(self.salt),
            "__groups__": np.array(len(groups)),
        }
        for g, ((query_names, weights), members) in enumerate(groups.items()):
            offsets = [0]
            for _, record in members:
                offsets.append(offsets[-1] + len(record.allocation_disks))
            meta = {
                "keys": [[self.salt, *key] for key, _ in members],
                "query_names": list(query_names),
                "weights": list(weights),
                "fragments_total": [
                    record.columns.fragments_total for _, record in members
                ],
                "prefetch": [list(record.prefetch) for _, record in members],
                "allocation_schemes": [
                    record.allocation_scheme for _, record in members
                ],
                "attributes_used": [
                    [
                        [list(pair) for pair in class_attributes]
                        for class_attributes in record.columns.attributes_used
                    ]
                    for _, record in members
                ],
                "alloc_offsets": offsets,
            }
            arrays[f"c{g}/meta"] = np.array(json.dumps(meta))
            arrays[f"c{g}/metrics"] = np.stack(
                [record.columns.metrics for _, record in members]
            )
            arrays[f"c{g}/disks"] = np.stack(
                [record.columns.disks_used for _, record in members]
            )
            arrays[f"c{g}/sequential"] = np.stack(
                [record.columns.sequential for _, record in members]
            )
            arrays[f"c{g}/forced"] = np.stack(
                [record.columns.forced for _, record in members]
            )
            arrays[f"c{g}/alloc_disks"] = np.concatenate(
                [record.allocation_disks for _, record in members]
            )
            arrays[f"c{g}/alloc_pages"] = np.concatenate(
                [record.allocation_pages for _, record in members]
            )

        def write(tmp_path: str) -> None:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **arrays)

        self._atomic_write(self.candidates_path, write)
