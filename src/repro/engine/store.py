"""Persistent on-disk spill of the evaluation cache (warm-start across processes).

Every CLI invocation of the interactive recommend → analyze → tune → simulate
loop used to rebuild the whole evaluation from nothing, because the
:class:`~repro.engine.cache.EvaluationCache` died with the process.  The cache
is content-addressed (sha1 signatures over frozen dataclasses,
:mod:`repro.engine.signature`), so its entries are valid across processes by
construction: a :class:`CacheStore` spills them under a cache directory and a
later process reloads them, making repeated invocations and tuning sessions
start warm.

On-disk format (version 3)
--------------------------

``entries.sqlite``
    One row per *scalar* access-structure entry (arbitrary frozen-dataclass
    graphs, pickled) and per candidate-exclusion report (JSON): the cache key
    (salt-prefixed, JSON-encoded tuple of content signatures) plus the
    payload.  Sqlite gives atomic reads over the many small blobs.  Version 3
    adds an ``access`` bookkeeping table — one row per entry of *any* of the
    three files with its estimated byte size and a last-access generation
    counter — plus ``generation`` / ``dead_bytes`` meta rows, which drive the
    LRU garbage collection and the append/compact write path below.

``structures.npz``
    The class-axis structure batches
    (:class:`~repro.costmodel.batch.AccessStructureBatch`).  They are plain
    numpy columns plus a little string metadata, so they spill to a single
    ``.npz`` (CRC-checked zip of ``.npy`` members) — binary-exact floats, no
    pickle needed.

``candidates.npz``
    Whole-candidate entries as **columnar groups**: all candidates sharing
    one (query classes, weights) shape stack into one metric cube, one disk
    plane, two flag planes and two concatenated allocation vectors, plus one
    JSON metadata member per group.  This replaces the per-candidate pickled
    blob of format 1: a warm process reads a handful of bulk numpy arrays
    instead of unpickling one object graph per spec, and the loaded entries
    stay *deferred* (:class:`~repro.engine.result.CandidateColumns`) until a
    warm probe materializes them under the probing engine context.

Invalidation and trust
----------------------

All files carry a **salt**: a digest over the store format version and the
``repro`` package version.  Every persisted key is prefixed with the same
salt.  A store written by a different format or package version, a truncated
or corrupted file, or an entry that fails to decode is **silently ignored,
never trusted** — the evaluation simply runs cold and overwrites the store
with fresh content.  Persistence is strictly best-effort: no store failure
(unreadable directory, read-only filesystem, concurrent writer) may ever
change a result or crash the advisor, only forfeit the warm start.

Maintenance (version 3)
-----------------------

Saves **merge** into the existing store instead of dumping the writer's cache
last-one-wins: the save first re-reads what the directory holds, unions it
with the in-memory entries (memory wins on key collisions — the values are
content-addressed, so a collision carries the identical value), and writes
the union back.  The sqlite file takes an *append* path — new rows are
inserted into the live database inside one transaction — until the dead
weight left behind by deleted rows exceeds
:data:`COMPACT_DEAD_FRACTION` of the live payload, at which point the file
is compacted: rewritten from scratch through the same temp-then-rename path
every full write uses.  The npz files are rewritten only when their entry
set actually changed.

When the store was built with a byte budget (``max_bytes``, CLI
``--cache-max-mb``), every save garbage-collects the merged union down to
the budget before writing: entries are evicted oldest-first by their
last-access generation (the advisor's in-memory cache reports which entries
the finished sweep touched, so everything a warm run still uses stays young)
and the written files are measured afterwards — eviction repeats until the
directory's actual size fits the budget.

Concurrency
-----------

Full writes are atomic: each file is written to a temporary sibling and then
``os.replace``'d into place; sqlite appends are single transactions on the
live database.  Concurrent CLI invocations sharing a cache directory either
see the complete previous store or the complete new one, never a partial
file, and since every save merges the directory's current content with the
writer's view, the surviving store is a superset of both up to GC.

The scalar structure entries are loaded with :mod:`pickle`, so a cache
directory must be trusted to the same degree as the code itself — point
``--cache-dir`` at a directory you own, not at a shared download location.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.engine.signature import stable_digest

__all__ = [
    "STORE_FORMAT_VERSION",
    "COMPACT_DEAD_FRACTION",
    "ENTRIES_FILENAME",
    "BATCHES_FILENAME",
    "CANDIDATES_FILENAME",
    "CacheStore",
    "StoreLoadStats",
    "store_salt",
]

#: Bump on any incompatible change to the on-disk layout; old stores are then
#: silently ignored (and overwritten on the next save).  Version 2 introduced
#: the columnar candidate file and the exclusion-report rows; version 3 the
#: access-tracking table behind the LRU garbage collection.
STORE_FORMAT_VERSION = 3

#: Compact (full temp-then-rename rewrite of) the sqlite file when the dead
#: weight of replaced/deleted rows exceeds this fraction of the live payload.
COMPACT_DEAD_FRACTION = 0.5

#: Estimated fixed per-entry overhead (sqlite row / npz member headers).
_ENTRY_OVERHEAD_BYTES = 512
#: Estimated fixed per-store overhead (sqlite page tree, npz/zip directory).
_BASE_OVERHEAD_BYTES = 24 * 1024
#: Hard cap on write→measure→evict rounds of one budgeted save.
_MAX_GC_ROUNDS = 8

#: Scalar-structure and exclusion-report entries (sqlite).
ENTRIES_FILENAME = "entries.sqlite"
#: Class-axis structure batches (single npz, numpy columns).
BATCHES_FILENAME = "structures.npz"
#: Whole-candidate entries (single npz, columnar groups).
CANDIDATES_FILENAME = "candidates.npz"

#: numpy-array fields of :class:`~repro.costmodel.batch.AccessStructureBatch`,
#: spilled verbatim as npz columns (dtypes preserved, floats binary-exact).
_BATCH_ARRAY_FIELDS = (
    "fragments_accessed",
    "rows_in_accessed_fragments",
    "qualifying_rows",
    "rows_per_fragment",
    "fact_pages_per_fragment",
    "forced_full_scan",
    "has_residuals",
    "bitmap_touched_per_fragment",
    "bitmap_density",
    "index_class",
    "index_pages",
    "bitmap_pages_per_fragment",
    "bitmap_index_counts",
)


def store_salt() -> str:
    """The store's version salt: format version + ``repro`` package version.

    Prefixes every persisted key and is checked file-wide on load, so a store
    written by any other format or package version can never be trusted by
    accident.
    """
    # Imported lazily: repro/__init__ imports repro.engine before defining
    # __version__, so a module-level import would see a partial package.
    from repro import __version__

    return stable_digest("warlock-cache-store", str(STORE_FORMAT_VERSION), __version__)


def _encode_key(salt: str, key: Tuple[str, ...]) -> str:
    """Serialize a cache key tuple, prefixed with the version salt."""
    return json.dumps([salt, *key])


def _decode_key(salt: str, text: str) -> Optional[Tuple[str, ...]]:
    """Parse a persisted key; ``None`` when malformed or salted differently."""
    parts = json.loads(text)
    if (
        not isinstance(parts, list)
        or len(parts) < 2
        or parts[0] != salt
        or not all(isinstance(part, str) for part in parts)
    ):
        return None
    return tuple(parts[1:])


@dataclass
class StoreLoadStats:
    """Cumulative robustness counters of a store's silent degradations.

    The store's contract is "all failures degrade to no store, never to an
    error" — which is right for results, but operators still need to *see*
    the degradations (a recurring corrupt file means a disk problem or a
    writer bug, a salt mismatch after every deploy means the store directory
    is shared across incompatible versions).  Counters are cumulative over
    the store object's life and cover every read path, including
    :meth:`CacheStore.save`'s internal merge re-reads; consumers wanting
    per-``load()`` deltas snapshot around the call (see
    :meth:`~repro.engine.cache.EvaluationCache.load`).
    """

    #: Whole files skipped because their version salt did not match.
    salt_mismatches: int = 0
    #: Individual entries/groups skipped (undecodable payloads, malformed
    #: or foreign-salted keys) while the rest of the file loaded fine.
    corrupt_entries: int = 0
    #: Whole files abandoned by the catch-all fallback (truncated sqlite,
    #: unreadable npz, stale format).
    fallback_loads: int = 0

    def copy(self) -> "StoreLoadStats":
        """A snapshot (for delta computation around one ``load()``)."""
        return StoreLoadStats(
            salt_mismatches=self.salt_mismatches,
            corrupt_entries=self.corrupt_entries,
            fallback_loads=self.fallback_loads,
        )


class CacheStore:
    """One persistent cache directory (see the module docstring for format).

    The store is deliberately stateless between calls: :meth:`load` reads
    whatever the directory currently holds, :meth:`save` merges into it (and
    garbage-collects when a byte budget is set).  All failures — missing
    directory, corruption, version mismatch, unwritable filesystem — degrade
    to "no store", never to an error; :attr:`load_stats` counts those silent
    degradations so health probes can surface them.

    Parameters
    ----------
    cache_dir:
        Directory holding the three store files.
    max_bytes:
        Byte budget of the whole directory (``None`` = unbounded): after
        every save the store's files must not exceed it, least-recently-used
        entries being evicted first.
    """

    def __init__(self, cache_dir, max_bytes: Optional[int] = None) -> None:
        self.cache_dir = os.fspath(cache_dir)
        self.salt = store_salt()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive when set, got {max_bytes}")
        self.max_bytes = max_bytes
        #: Robustness counters over every read this store object performed.
        self.load_stats = StoreLoadStats()

    @property
    def entries_path(self) -> str:
        """Path of the sqlite entry file (scalar structures + reports)."""
        return os.path.join(self.cache_dir, ENTRIES_FILENAME)

    @property
    def batches_path(self) -> str:
        """Path of the npz batch file (class-axis structure batches)."""
        return os.path.join(self.cache_dir, BATCHES_FILENAME)

    @property
    def candidates_path(self) -> str:
        """Path of the npz candidate file (columnar candidate groups)."""
        return os.path.join(self.cache_dir, CANDIDATES_FILENAME)

    # -- load -------------------------------------------------------------------

    def load(
        self,
    ) -> Tuple[
        Dict[Tuple[str, ...], Any],
        Dict[Tuple[str, ...], Any],
        Dict[Tuple[str, ...], Any],
    ]:
        """Read the store: ``(structures, candidates, exclusion reports)``.

        Structure entries cover both the scalar per-query structures and the
        class-axis batches (they share one cache dict); candidate entries are
        deferred :class:`~repro.engine.result.CandidateColumns` records.
        Returns empty dicts for anything missing, corrupted or
        version-mismatched.
        """
        structures = self._load_batches()
        scalar, reports = self._load_entries()
        structures.update(scalar)
        candidates = self._load_candidates()
        return structures, candidates, reports

    def _load_entries(self):
        structures: Dict[Tuple[str, ...], Any] = {}
        reports: Dict[Tuple[str, ...], Any] = {}
        path = self.entries_path
        try:
            if not os.path.exists(path):
                return {}, {}
            # Read-only URI: never create or lock-upgrade the file while a
            # concurrent invocation may be replacing it.
            connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
            try:
                rows = connection.execute(
                    "SELECT value FROM meta WHERE key = 'salt'"
                ).fetchall()
                if not rows or rows[0][0] != self.salt:
                    self.load_stats.salt_mismatches += 1
                    return {}, {}
                for key_text, kind, payload in connection.execute(
                    "SELECT key, kind, payload FROM entries"
                ):
                    # Per-entry skip: one undecodable row (truncated pickle,
                    # class drift in a dev checkout) forfeits that entry only,
                    # not the whole warm start.
                    try:
                        key = _decode_key(self.salt, key_text)
                        if key is None:
                            self.load_stats.corrupt_entries += 1
                            continue
                        if kind == "report":
                            reports[key] = json.loads(payload.decode("utf-8"))
                        else:
                            structures[key] = pickle.loads(payload)
                    except Exception:
                        self.load_stats.corrupt_entries += 1
                        continue
            finally:
                connection.close()
        except Exception:
            # Stale format, truncated file, undecodable entry: never trusted.
            self.load_stats.fallback_loads += 1
            return {}, {}
        return structures, reports

    def _load_batches(self) -> Dict[Tuple[str, ...], Any]:
        from repro.costmodel.batch import AccessStructureBatch

        entries: Dict[Tuple[str, ...], Any] = {}
        path = self.batches_path
        try:
            if not os.path.exists(path):
                return {}
            with np.load(path, allow_pickle=False) as data:
                if str(data["__salt__"][()]) != self.salt:
                    self.load_stats.salt_mismatches += 1
                    return {}
                keys = json.loads(str(data["__index__"][()]))
                for i, parts in enumerate(keys):
                    # Per-entry skip, as for the sqlite rows.
                    try:
                        key = _decode_key(self.salt, json.dumps(parts))
                        if key is None:
                            self.load_stats.corrupt_entries += 1
                            continue
                        meta = json.loads(str(data[f"{i}/meta"][()]))
                        arrays = {
                            name: data[f"{i}/{name}"] for name in _BATCH_ARRAY_FIELDS
                        }
                        entries[key] = AccessStructureBatch(
                            query_names=tuple(meta["query_names"]),
                            fragments_total=int(meta["fragments_total"]),
                            index_attributes=tuple(
                                (dimension, level)
                                for dimension, level in meta["index_attributes"]
                            ),
                            **arrays,
                        )
                    except Exception:
                        self.load_stats.corrupt_entries += 1
                        continue
        except Exception:
            self.load_stats.fallback_loads += 1
            return {}
        return entries

    def _load_candidates(self) -> Dict[Tuple[str, ...], Any]:
        from repro.costmodel import EvaluationColumns
        from repro.engine.result import CandidateColumns

        entries: Dict[Tuple[str, ...], Any] = {}
        path = self.candidates_path
        try:
            if not os.path.exists(path):
                return {}
            with np.load(path, allow_pickle=False) as data:
                if str(data["__salt__"][()]) != self.salt:
                    self.load_stats.salt_mismatches += 1
                    return {}
                num_groups = int(data["__groups__"][()])
                for g in range(num_groups):
                    # Per-group skip: one bad group forfeits its candidates
                    # only, not the whole warm start.
                    try:
                        meta = json.loads(str(data[f"c{g}/meta"][()]))
                        metrics = data[f"c{g}/metrics"]
                        disks = data[f"c{g}/disks"]
                        sequential = data[f"c{g}/sequential"]
                        forced = data[f"c{g}/forced"]
                        alloc_disks = data[f"c{g}/alloc_disks"]
                        alloc_pages = data[f"c{g}/alloc_pages"]
                        query_names = tuple(meta["query_names"])
                        weights = tuple(meta["weights"])
                        offsets = meta["alloc_offsets"]
                    except Exception:
                        self.load_stats.corrupt_entries += 1
                        continue
                    for j, key_parts in enumerate(meta["keys"]):
                        try:
                            key = _decode_key(self.salt, json.dumps(key_parts))
                            if key is None:
                                self.load_stats.corrupt_entries += 1
                                continue
                            # All per-candidate slices are copied: a view
                            # would pin the group's whole stacked cube (or
                            # concatenated allocation vector) alive for as
                            # long as any single candidate survives in the
                            # in-memory cache.
                            entries[key] = CandidateColumns(
                                columns=EvaluationColumns(
                                    query_names=query_names,
                                    weights=weights,
                                    fragments_total=int(
                                        meta["fragments_total"][j]
                                    ),
                                    metrics=metrics[j].copy(),
                                    disks_used=disks[j].copy(),
                                    sequential=sequential[j].copy(),
                                    forced=forced[j].copy(),
                                    attributes_used=tuple(
                                        tuple(
                                            tuple(pair)
                                            for pair in class_attributes
                                        )
                                        for class_attributes in meta[
                                            "attributes_used"
                                        ][j]
                                    ),
                                ),
                                prefetch=tuple(meta["prefetch"][j]),
                                allocation_scheme=meta["allocation_schemes"][j],
                                allocation_disks=alloc_disks[
                                    offsets[j] : offsets[j + 1]
                                ].copy(),
                                allocation_pages=alloc_pages[
                                    offsets[j] : offsets[j + 1]
                                ].copy(),
                            )
                        except Exception:
                            self.load_stats.corrupt_entries += 1
                            continue
        except Exception:
            self.load_stats.fallback_loads += 1
            return {}
        return entries

    # -- save -------------------------------------------------------------------

    def save(
        self,
        structures: Mapping[Tuple[str, ...], Any],
        candidates: Mapping[Tuple[str, ...], Any],
        reports: Optional[Mapping[Tuple[str, ...], Any]] = None,
        touched: Optional[set] = None,
    ) -> Optional[int]:
        """Merge the given cache content into the store (append+compact, GC'd).

        The directory's current entries are unioned with the provided ones
        (provided entries win on key collisions; the keys are content
        signatures, so a collision carries the identical value), the union is
        garbage-collected down to ``max_bytes`` when a budget is set, and the
        three files are written — the sqlite file through an in-place append
        (compacted via the atomic temp-then-rename path once its dead weight
        crosses :data:`COMPACT_DEAD_FRACTION`), the npz files only when their
        entry set changed.

        ``touched`` names the cache keys the writing process actually used
        (hit or inserted) this run: their last-access generation is
        refreshed, everything else keeps its age.  ``None`` refreshes every
        provided entry.

        Returns the number of entries the store holds after the save, or
        ``None`` when the store could not be written (best-effort: the
        evaluation already succeeded, only the warm start of the *next*
        process is forfeited).
        """
        from repro.costmodel.batch import AccessStructureBatch
        from repro.engine.result import CandidateColumns

        reports = {} if reports is None else reports
        scalar: Dict[Tuple[str, ...], Any] = {}
        batches: Dict[Tuple[str, ...], Any] = {}
        for key, value in structures.items():
            (batches if isinstance(value, AccessStructureBatch) else scalar)[key] = value
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            records = {
                key: (
                    value
                    if isinstance(value, CandidateColumns)
                    else CandidateColumns.from_candidate(value)
                )
                for key, value in candidates.items()
            }
            disk_scalar, disk_reports = self._load_entries()
            disk_batches = self._load_batches()
            disk_candidates = self._load_candidates()
            disk_keys = {
                "structure": set(disk_scalar),
                "report": set(disk_reports),
                "batch": set(disk_batches),
                "candidate": set(disk_candidates),
            }
            merged: Dict[str, Dict[Tuple[str, ...], Any]] = {
                "structure": {**disk_scalar, **scalar},
                "report": {**disk_reports, **reports},
                "batch": {**disk_batches, **batches},
                "candidate": {**disk_candidates, **records},
            }
            provided = {
                "structure": set(scalar),
                "report": set(reports),
                "batch": set(batches),
                "candidate": set(records),
            }
            old_access, generation, dead_bytes = self._read_access_state()
            generation += 1
            payloads = self._encode_payloads(merged)
            new_access: Dict[Tuple[str, ...], Tuple[str, int, int]] = {}
            for kind, entries in merged.items():
                for key in entries:
                    old = old_access.get(key)
                    refreshed = (
                        key in provided[kind] if touched is None else key in touched
                    )
                    new_access[key] = (
                        kind,
                        self._entry_bytes(kind, key, merged, payloads),
                        generation if refreshed or old is None else old[2],
                    )
            self._collect_and_write(
                merged, new_access, payloads, disk_keys, old_access,
                generation, dead_bytes,
            )
        except Exception:
            return None
        return sum(len(entries) for entries in merged.values())

    def _read_access_state(self):
        """``(access map, generation, dead bytes)`` from the live sqlite file.

        Best-effort like every read: a missing, corrupted or foreign-salted
        file yields empty bookkeeping, which simply makes every entry "new".
        """
        path = self.entries_path
        try:
            if not os.path.exists(path):
                return {}, 0, 0
            connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
            try:
                rows = connection.execute(
                    "SELECT value FROM meta WHERE key = 'salt'"
                ).fetchall()
                if not rows or rows[0][0] != self.salt:
                    return {}, 0, 0
                generation = 0
                dead_bytes = 0
                for key, value in connection.execute("SELECT key, value FROM meta"):
                    try:
                        if key == "generation":
                            generation = int(value)
                        elif key == "dead_bytes":
                            dead_bytes = int(value)
                    except (TypeError, ValueError):
                        continue
                access: Dict[Tuple[str, ...], Tuple[str, int, int]] = {}
                for key_text, kind, nbytes, last in connection.execute(
                    "SELECT key, kind, bytes, last_access FROM access"
                ):
                    try:
                        key = _decode_key(self.salt, key_text)
                        if key is None:
                            continue
                        access[key] = (str(kind), int(nbytes), int(last))
                    except Exception:
                        continue
                return access, generation, dead_bytes
            finally:
                connection.close()
        except Exception:
            return {}, 0, 0

    def _encode_payloads(self, merged):
        """The sqlite payload blobs of the merged scalar/report entries."""
        payloads: Dict[Tuple[str, Tuple[str, ...]], bytes] = {}
        for key, value in merged["structure"].items():
            payloads[("structure", key)] = pickle.dumps(
                value, protocol=pickle.HIGHEST_PROTOCOL
            )
        for key, value in merged["report"].items():
            payloads[("report", key)] = json.dumps(value).encode("utf-8")
        return payloads

    @staticmethod
    def _entry_bytes(kind, key, merged, payloads) -> int:
        """Estimated on-disk footprint of one entry (payload + fixed overhead)."""
        if kind in ("structure", "report"):
            return len(payloads[(kind, key)]) + _ENTRY_OVERHEAD_BYTES
        value = merged[kind][key]
        if kind == "batch":
            total = sum(
                np.asarray(getattr(value, name)).nbytes
                for name in _BATCH_ARRAY_FIELDS
            )
        else:
            columns = value.columns
            total = (
                columns.metrics.nbytes
                + columns.disks_used.nbytes
                + columns.sequential.nbytes
                + columns.forced.nbytes
                + np.asarray(value.allocation_disks).nbytes
                + np.asarray(value.allocation_pages).nbytes
            )
        return int(total) + _ENTRY_OVERHEAD_BYTES

    def _select_evictions(self, new_access, over_bytes: Optional[int] = None):
        """Oldest-first eviction set covering the (estimated or measured) excess.

        Ordering is deterministic: ascending last-access generation, ties by
        kind then key.
        """
        if self.max_bytes is None:
            return set()
        if over_bytes is None:
            total = _BASE_OVERHEAD_BYTES + sum(
                nbytes for _, nbytes, _ in new_access.values()
            )
            over_bytes = total - self.max_bytes
        if over_bytes <= 0:
            return set()
        evicted = set()
        for key, (kind, nbytes, last) in sorted(
            new_access.items(), key=lambda item: (item[1][2], item[1][0], item[0])
        ):
            if over_bytes <= 0:
                break
            evicted.add(key)
            over_bytes -= nbytes
        return evicted

    @staticmethod
    def _drop(merged, new_access, payloads, evicted) -> None:
        for key in evicted:
            kind = new_access.pop(key)[0]
            merged[kind].pop(key, None)
            payloads.pop((kind, key), None)

    def _store_bytes(self) -> int:
        """Actual byte size of the three store files (missing files count 0)."""
        total = 0
        for path in (self.entries_path, self.batches_path, self.candidates_path):
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total

    def _collect_and_write(
        self, merged, new_access, payloads, disk_keys, old_access,
        generation, dead_bytes,
    ) -> None:
        """GC the merged union to the byte budget, then write the files.

        Without a budget this is one plain write.  With one, the estimated
        total is trimmed before writing, the written files are *measured*,
        and eviction repeats oldest-first until the directory actually fits —
        estimates only steer, the budget is enforced on real file sizes.  A
        budget no store can fit (smaller than the fixed file overheads)
        removes the files entirely.
        """
        evicted = self._select_evictions(new_access)
        self._drop(merged, new_access, payloads, evicted)
        force_full = False
        for _ in range(_MAX_GC_ROUNDS):
            self._write_files(
                merged, new_access, payloads, disk_keys, old_access,
                generation, dead_bytes, force_full,
            )
            measured = self._store_bytes()
            if self.max_bytes is None or measured <= self.max_bytes:
                return
            if not new_access:
                break
            over = measured - self.max_bytes
            # The per-entry sizes steering the eviction are payload
            # *estimates*; on disk every entry also pays format overhead
            # (zip headers, sqlite pages) the estimate cannot see.  Translate
            # the measured excess into estimate units before selecting: a
            # store whose files run 2-3x the estimate would otherwise free
            # 2-3x too many entries — down to an empty directory — in one
            # round.  Undershooting is safe; the next round measures again.
            estimated = _BASE_OVERHEAD_BYTES + sum(
                nbytes for _, nbytes, _ in new_access.values()
            )
            if measured > estimated:
                over = -(-over * estimated // measured)
            evicted = self._select_evictions(new_access, over_bytes=over)
            if not evicted:
                evicted = {
                    min(
                        new_access,
                        key=lambda k: (new_access[k][2], new_access[k][0], k),
                    )
                }
            self._drop(merged, new_access, payloads, evicted)
            force_full = True
        # Still over budget with nothing (left) to evict — or the rounds ran
        # out: the budget wins over keeping a store at all.
        self._drop(merged, new_access, payloads, set(new_access))
        for path in (self.entries_path, self.batches_path, self.candidates_path):
            try:
                os.unlink(path)
            except OSError:
                continue

    def _write_files(
        self, merged, new_access, payloads, disk_keys, old_access,
        generation, dead_bytes, force_full,
    ) -> None:
        if (
            force_full
            or set(merged["batch"]) != disk_keys["batch"]
            or not os.path.exists(self.batches_path)
        ):
            self._save_batches(merged["batch"])
        if (
            force_full
            or set(merged["candidate"]) != disk_keys["candidate"]
            or not os.path.exists(self.candidates_path)
        ):
            self._save_candidates(merged["candidate"])
        self._write_entries(
            merged, new_access, payloads, disk_keys, old_access,
            generation, dead_bytes, force_full,
        )

    def _write_entries(
        self, merged, new_access, payloads, disk_keys, old_access,
        generation, dead_bytes, force_full,
    ) -> None:
        """Append into the live sqlite file, or compact it via a full rewrite.

        The append path inserts only rows the file does not hold yet and
        deletes evicted ones inside a single transaction; the bytes freed by
        deletions accumulate as *dead weight* (sqlite recycles pages
        internally but never shrinks the file) and trigger the compaction —
        the same atomic temp-then-rename full write a fresh store gets.
        """
        sqlite_disk_keys = disk_keys["structure"] | disk_keys["report"]
        sqlite_keys = set(merged["structure"]) | set(merged["report"])
        deleted = sqlite_disk_keys - sqlite_keys
        dead = dead_bytes + sum(
            old_access[key][1] if key in old_access else _ENTRY_OVERHEAD_BYTES
            for key in deleted
        )
        live_bytes = sum(len(payload) for payload in payloads.values())
        access_rows = [
            (_encode_key(self.salt, key), kind, int(nbytes), int(last))
            for key, (kind, nbytes, last) in new_access.items()
        ]
        if (
            not force_full
            and os.path.exists(self.entries_path)
            and dead <= COMPACT_DEAD_FRACTION * max(live_bytes, 1)
        ):
            new_rows = []
            for key in sqlite_keys - sqlite_disk_keys:
                kind = "structure" if key in merged["structure"] else "report"
                new_rows.append(
                    (_encode_key(self.salt, key), kind, payloads[(kind, key)])
                )
            try:
                self._append_entries(new_rows, deleted, access_rows, generation, dead)
                return
            except Exception:
                # Foreign salt, locked or tampered file: fall through to the
                # atomic full rewrite, which replaces it wholesale.
                pass
        self._write_entries_full(merged, payloads, access_rows, generation)

    def _append_entries(
        self, new_rows, deleted_keys, access_rows, generation, dead_bytes
    ) -> None:
        connection = sqlite3.connect(self.entries_path)
        try:
            with connection:
                rows = connection.execute(
                    "SELECT value FROM meta WHERE key = 'salt'"
                ).fetchall()
                if not rows or rows[0][0] != self.salt:
                    raise ValueError("store salt mismatch")
                connection.executemany(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?)", new_rows
                )
                connection.executemany(
                    "DELETE FROM entries WHERE key = ?",
                    [(_encode_key(self.salt, key),) for key in deleted_keys],
                )
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS access "
                    "(key TEXT PRIMARY KEY, kind TEXT NOT NULL, "
                    "bytes INTEGER NOT NULL, last_access INTEGER NOT NULL)"
                )
                connection.execute("DELETE FROM access")
                connection.executemany(
                    "INSERT INTO access VALUES (?, ?, ?, ?)", access_rows
                )
                connection.executemany(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                    [
                        ("generation", str(generation)),
                        ("dead_bytes", str(int(dead_bytes))),
                    ],
                )
        finally:
            connection.close()

    def _write_entries_full(self, merged, payloads, access_rows, generation) -> None:
        rows = []
        for kind in ("structure", "report"):
            for key in merged[kind]:
                rows.append((_encode_key(self.salt, key), kind, payloads[(kind, key)]))

        def write(tmp_path: str) -> None:
            connection = sqlite3.connect(tmp_path)
            try:
                connection.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)"
                )
                connection.execute(
                    "CREATE TABLE entries "
                    "(key TEXT PRIMARY KEY, kind TEXT NOT NULL, payload BLOB NOT NULL)"
                )
                connection.execute(
                    "CREATE TABLE access "
                    "(key TEXT PRIMARY KEY, kind TEXT NOT NULL, "
                    "bytes INTEGER NOT NULL, last_access INTEGER NOT NULL)"
                )
                connection.executemany(
                    "INSERT INTO meta VALUES (?, ?)",
                    [
                        ("salt", self.salt),
                        ("generation", str(generation)),
                        ("dead_bytes", "0"),
                    ],
                )
                connection.executemany(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?)", rows
                )
                connection.executemany(
                    "INSERT INTO access VALUES (?, ?, ?, ?)", access_rows
                )
                connection.commit()
            finally:
                connection.close()

        self._atomic_write(self.entries_path, write)

    def _atomic_write(self, final_path: str, write):
        """Run ``write(tmp_path)`` then rename the temp file into place."""
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".store-", suffix=".tmp"
        )
        os.close(fd)
        try:
            write(tmp_path)
            os.replace(tmp_path, final_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _save_batches(self, batches) -> None:
        arrays: Dict[str, np.ndarray] = {
            "__salt__": np.array(self.salt),
            "__index__": np.array(
                json.dumps([[self.salt, *key] for key in batches])
            ),
        }
        for i, batch in enumerate(batches.values()):
            arrays[f"{i}/meta"] = np.array(
                json.dumps(
                    {
                        "query_names": list(batch.query_names),
                        "fragments_total": batch.fragments_total,
                        "index_attributes": [
                            list(pair) for pair in batch.index_attributes
                        ],
                    }
                )
            )
            for name in _BATCH_ARRAY_FIELDS:
                arrays[f"{i}/{name}"] = getattr(batch, name)

        def write(tmp_path: str) -> None:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **arrays)

        self._atomic_write(self.batches_path, write)

    def _save_candidates(self, candidates) -> None:
        from repro.engine.result import CandidateColumns

        # Group the candidates by class shape: every group stacks into one
        # metric cube plus concatenated allocation vectors.  Weight floats
        # round-trip exactly through JSON (repr-based shortest encoding);
        # every metric float stays binary in the npz.
        groups: Dict[Tuple, list] = {}
        for key, value in candidates.items():
            record = (
                value
                if isinstance(value, CandidateColumns)
                else CandidateColumns.from_candidate(value)
            )
            shape = (record.columns.query_names, record.columns.weights)
            groups.setdefault(shape, []).append((key, record))

        arrays: Dict[str, np.ndarray] = {
            "__salt__": np.array(self.salt),
            "__groups__": np.array(len(groups)),
        }
        for g, ((query_names, weights), members) in enumerate(groups.items()):
            offsets = [0]
            for _, record in members:
                offsets.append(offsets[-1] + len(record.allocation_disks))
            meta = {
                "keys": [[self.salt, *key] for key, _ in members],
                "query_names": list(query_names),
                "weights": list(weights),
                "fragments_total": [
                    record.columns.fragments_total for _, record in members
                ],
                "prefetch": [list(record.prefetch) for _, record in members],
                "allocation_schemes": [
                    record.allocation_scheme for _, record in members
                ],
                "attributes_used": [
                    [
                        [list(pair) for pair in class_attributes]
                        for class_attributes in record.columns.attributes_used
                    ]
                    for _, record in members
                ],
                "alloc_offsets": offsets,
            }
            arrays[f"c{g}/meta"] = np.array(json.dumps(meta))
            arrays[f"c{g}/metrics"] = np.stack(
                [record.columns.metrics for _, record in members]
            )
            arrays[f"c{g}/disks"] = np.stack(
                [record.columns.disks_used for _, record in members]
            )
            arrays[f"c{g}/sequential"] = np.stack(
                [record.columns.sequential for _, record in members]
            )
            arrays[f"c{g}/forced"] = np.stack(
                [record.columns.forced for _, record in members]
            )
            arrays[f"c{g}/alloc_disks"] = np.concatenate(
                [record.allocation_disks for _, record in members]
            )
            arrays[f"c{g}/alloc_pages"] = np.concatenate(
                [record.allocation_pages for _, record in members]
            )

        def write(tmp_path: str) -> None:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **arrays)

        self._atomic_write(self.candidates_path, write)
