"""Stable content fingerprints for cache keys and result-parity checks.

Cache keys must identify *inputs by content*, not by object identity: two
``Warlock`` instances built from equal schemas must hit the same cache entries,
and a worker process must produce entries a later serial run can reuse.  All
input objects of the advisor are frozen dataclasses whose auto-generated
``repr`` deterministically encodes every field, so a digest over the repr is a
faithful content fingerprint.  Digests are memoized on the instance (frozen
dataclasses still carry a ``__dict__``), so the repr is rendered once per
object, not once per cache probe.

:func:`recommendation_state` / :func:`recommendation_fingerprint` canonicalize
a full :class:`~repro.core.advisor.Recommendation` — every float at full
precision, every allocation vector — which is what the parity tests and the
engine benchmark use to prove that serial, parallel and cached runs return
identical results.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

__all__ = [
    "stable_digest",
    "object_signature",
    "layout_signature",
    "query_structure_signature",
    "recommendation_state",
    "recommendation_fingerprint",
]

_SIGNATURE_ATTR = "_engine_signature"


def stable_digest(*parts: str) -> str:
    """SHA-1 hex digest over the given string parts (order-sensitive)."""
    digest = hashlib.sha1()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def object_signature(obj: Any) -> str:
    """Content fingerprint of a (frozen-dataclass) value object.

    The digest covers the type name and the full ``repr``; it is memoized on
    the instance's ``__dict__`` so repeated probes are O(1).
    """
    state = getattr(obj, "__dict__", None)
    if state is not None:
        cached = state.get(_SIGNATURE_ATTR)
        if cached is not None:
            return cached
    signature = stable_digest(type(obj).__name__, repr(obj))
    if state is not None:
        state[_SIGNATURE_ATTR] = signature
    return signature


def query_structure_signature(query: Any) -> str:
    """Weight-independent content fingerprint of a query class.

    Access structures depend on a query's restrictions (and the fact table it
    targets), never on its workload weight — so the structure cache keys on
    this signature, letting reweighted mixes reuse every structure.  The name
    is included because it is baked into the cached structure itself.
    """
    state = query.__dict__
    cached = state.get("_engine_structure_signature")
    if cached is not None:
        return cached
    signature = stable_digest(
        "QueryClassStructure",
        query.name,
        repr(query.restrictions),
        repr(query.fact_table),
    )
    state["_engine_structure_signature"] = signature
    return signature


def layout_signature(layout: Any) -> str:
    """Content fingerprint of a fragmentation layout.

    Derived from the layout's defining fields (schema, fact table, spec, page
    size) rather than its full repr, so the digest ignores lazily cached
    per-fragment arrays.
    """
    state = layout.__dict__
    cached = state.get(_SIGNATURE_ATTR)
    if cached is not None:
        return cached
    signature = stable_digest(
        "FragmentationLayout",
        object_signature(layout.schema),
        layout.fact.name,
        layout.spec.label,
        str(layout.page_size_bytes),
    )
    state[_SIGNATURE_ATTR] = signature
    return signature


def _float_repr(value: float) -> str:
    """Full-precision canonical text of a float (repr round-trips exactly)."""
    return repr(float(value))


def _profile_state(profile: Any) -> Dict[str, Any]:
    return {
        "fragments_accessed": _float_repr(profile.fragments_accessed),
        "fragments_total": profile.fragments_total,
        "rows_in_accessed_fragments": _float_repr(profile.rows_in_accessed_fragments),
        "qualifying_rows": _float_repr(profile.qualifying_rows),
        "fact_pages_per_fragment": _float_repr(profile.fact_pages_per_fragment),
        "fact_pages_accessed": _float_repr(profile.fact_pages_accessed),
        "bitmap_pages_accessed": _float_repr(profile.bitmap_pages_accessed),
        "fact_io_requests": _float_repr(profile.fact_io_requests),
        "bitmap_io_requests": _float_repr(profile.bitmap_io_requests),
        "fact_pages_transferred": _float_repr(profile.fact_pages_transferred),
        "bitmap_pages_transferred": _float_repr(profile.bitmap_pages_transferred),
        "sequential_fact_access": profile.sequential_fact_access,
        "forced_full_scan": profile.forced_full_scan,
        "bitmap_attributes_used": list(map(list, profile.bitmap_attributes_used)),
    }


def _candidate_state(candidate: Any) -> Dict[str, Any]:
    return {
        "label": candidate.label,
        "fragment_count": candidate.fragment_count,
        "io_cost_ms": _float_repr(candidate.io_cost_ms),
        "response_time_ms": _float_repr(candidate.response_time_ms),
        "prefetch": {
            "fact_pages": candidate.prefetch.fact_pages,
            "bitmap_pages": candidate.prefetch.bitmap_pages,
            "fact_policy": candidate.prefetch.fact_policy.value,
            "bitmap_policy": candidate.prefetch.bitmap_policy.value,
        },
        "bitmap_indexes": [
            [index.dimension, index.level] for index in candidate.bitmap_scheme
        ],
        "allocation": {
            "scheme": candidate.allocation.scheme,
            "disk_of_fragment": candidate.allocation.disk_of_fragment.tolist(),
            "fragment_pages": [
                _float_repr(pages)
                for pages in candidate.allocation.fragment_pages.tolist()
            ],
        },
        "per_class": [
            {
                "query_name": cost.query_name,
                "weight": _float_repr(cost.weight),
                "io_cost_ms": _float_repr(cost.io_cost_ms),
                "response_time_ms": _float_repr(cost.response_time_ms),
                "disks_used": cost.disks_used,
                "profile": _profile_state(cost.profile),
            }
            for cost in candidate.evaluation.per_class
        ],
    }


def recommendation_state(recommendation: Any) -> Dict[str, Any]:
    """Canonical, JSON-able deep state of a recommendation.

    Every float is rendered at full ``repr`` precision, so two states compare
    equal exactly when the recommendations are bit-identical.
    """
    return {
        "schema": recommendation.schema.name,
        "considered": recommendation.exclusion_report.considered,
        "excluded": dict(
            sorted(
                (label, list(violations))
                for label, violations in recommendation.exclusion_report.excluded.items()
            )
        ),
        "ranked": [
            {
                "final_rank": ranked.final_rank,
                "io_rank": ranked.io_rank,
                **_candidate_state(ranked.candidate),
            }
            for ranked in recommendation.ranked
        ],
        "evaluated": [
            _candidate_state(candidate) for candidate in recommendation.evaluated
        ],
    }


def recommendation_fingerprint(recommendation: Any) -> str:
    """SHA-1 fingerprint of :func:`recommendation_state` (parity checks)."""
    payload = json.dumps(recommendation_state(recommendation), sort_keys=True)
    return stable_digest("Recommendation", payload)
