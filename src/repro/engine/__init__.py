"""The candidate-evaluation engine (batched, parallel, cache-aware).

The engine subsystem turns the advisor's serial candidate loop into an
explicit pipeline:

1. :class:`~repro.engine.plan.EvaluationPlan` expands the
   (candidate × query class) work units of a sweep up front and partitions
   candidates into deterministic, cost-balanced chunks.
2. :class:`~repro.engine.executor.EvaluationEngine` executes the plan — inline
   (``jobs=1``) or on a process pool (``jobs>1``) — with guaranteed result
   parity between the two backends.
3. :class:`~repro.engine.cache.EvaluationCache` memoizes the prefetch-
   independent access structures and per-class cost records, so what-if
   tuning studies, comparisons and warm advisor runs reuse rather than
   recompute shared evaluations.
4. :mod:`~repro.engine.signature` provides the content fingerprints the cache
   keys on, plus recommendation fingerprints used to *prove* parity.
5. :class:`~repro.engine.store.CacheStore` spills the cache to a directory
   (sqlite for pickled scalar structures and exclusion reports, one npz for
   class-axis batches, one npz of columnar candidate groups that materialize
   lazily on the first warm probe) so later *processes* warm-start from
   disk; corrupted or version-mismatched stores are silently ignored.
"""

from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.store import STORE_FORMAT_VERSION, CacheStore, store_salt
from repro.engine.jobs import MIN_SPECS_FOR_PARALLEL, adaptive_jobs, available_cpus
from repro.engine.plan import EvaluationPlan, WorkUnit
from repro.engine.result import CandidateColumns, CandidateResultBatch
from repro.engine.signature import (
    layout_signature,
    object_signature,
    recommendation_fingerprint,
    recommendation_state,
    stable_digest,
)
from repro.engine.executor import (
    EngineContext,
    EvaluationEngine,
    evaluate_spec_in_context,
    evaluate_specs_in_context,
)

__all__ = [
    "CacheStats",
    "CacheStore",
    "CandidateColumns",
    "CandidateResultBatch",
    "EvaluationCache",
    "STORE_FORMAT_VERSION",
    "store_salt",
    "EvaluationPlan",
    "WorkUnit",
    "EngineContext",
    "EvaluationEngine",
    "evaluate_spec_in_context",
    "evaluate_specs_in_context",
    "MIN_SPECS_FOR_PARALLEL",
    "adaptive_jobs",
    "available_cpus",
    "layout_signature",
    "object_signature",
    "recommendation_fingerprint",
    "recommendation_state",
    "stable_digest",
]
