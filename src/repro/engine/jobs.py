"""Adaptive worker-count selection for the candidate-evaluation engine.

``jobs="auto"`` picks the number of worker processes from the CPUs actually
available to this process and the size of the sweep, instead of forcing the
DBA to guess.  The heuristic is deliberately conservative: a process pool only
pays off once every worker has enough candidates to amortize the pool start-up
and the context shipping, so small sweeps stay serial regardless of core
count.

Choosing any number of workers never changes results — execution strategy is
invisible in the engine's output (the parity tests assert bit-identical
recommendations for every ``jobs`` value) — so the heuristic only trades
wall-clock time, never correctness.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["available_cpus", "adaptive_jobs", "MIN_SPECS_FOR_PARALLEL"]

#: Below this many candidates a process pool cannot amortize its start-up and
#: serialization overhead; such sweeps evaluate serially.  Doubles as the
#: block size of ``jobs="auto"``: one worker per *started* block of this many
#: candidates (ceil division), so any sweep strictly larger than this gets at
#: least two workers while a sweep of exactly this size stays serial.
MIN_SPECS_FOR_PARALLEL = 8


def available_cpus() -> int:
    """CPUs available to *this process* (affinity-aware where possible).

    Prefers :func:`os.process_cpu_count` (Python 3.13+), falls back to the
    scheduling affinity on platforms that expose it, then to
    :func:`os.cpu_count`.  Returns at least 1.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        count = process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    else:
        count = os.cpu_count()
    return max(1, count or 1)


def adaptive_jobs(num_candidates: int, cpus: Optional[int] = None) -> int:
    """Worker count for a sweep of ``num_candidates`` candidates.

    One worker per *started* block of :data:`MIN_SPECS_FOR_PARALLEL`
    candidates (ceil division), capped at the available CPUs, never below 1 —
    so ``jobs="auto"`` evaluates sweeps of up to
    :data:`MIN_SPECS_FOR_PARALLEL` candidates serially, parallelizes
    everything above it (a 9-candidate sweep already gets two workers),
    scales up with the candidate space, and never oversubscribes the machine.
    """
    if num_candidates < 0:
        raise ValueError(f"num_candidates must be non-negative, got {num_candidates}")
    cpus = available_cpus() if cpus is None else cpus
    if cpus < 1:
        raise ValueError(f"cpus must be at least 1, got {cpus}")
    return max(1, min(cpus, -(-num_candidates // MIN_SPECS_FOR_PARALLEL)))
