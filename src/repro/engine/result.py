"""Columnar candidate records: pool transport, cache views, store format.

Worker→parent result pickling is the process pool's dominant overhead: a
:class:`~repro.core.candidates.FragmentationCandidate` drags a deep object
graph of per-class :class:`~repro.costmodel.QueryCost` records (each with a
frozen :class:`~repro.costmodel.QueryAccessProfile`) through pickle for every
candidate.  :class:`CandidateResultBatch` flattens one chunk's candidates into
a handful of numpy arrays over the (candidate × query class) axes plus the
small per-candidate scalars (prefetch granules, allocation vectors), and the
parent re-materializes the exact same candidates from the columns.

:class:`CandidateColumns` is the per-candidate unit of the same idea: one
candidate's columnar state, materializable into a
:class:`FragmentationCandidate` under any engine context whose content
signatures match the cache key it was stored under.  It serves two roles:

* each row of a :class:`CandidateResultBatch` is one (the parent
  re-materializes via :meth:`CandidateColumns.materialize`);
* the persistent store (:mod:`repro.engine.store`) spills whole-candidate
  cache entries as these records — plain numpy columns plus JSON metadata
  instead of one pickled object graph per candidate — and
  :class:`~repro.engine.cache.EvaluationCache` materializes them lazily on
  the first warm probe.

Reconstruction is exact: every float travels as the same IEEE-754 double it
was computed as, layouts are rebuilt from the same ``(schema, spec, page
size)`` inputs (they are deterministic value objects), and the bitmap scheme
is taken from the shared engine context — so a reconstructed candidate is
bit-identical to the original, which the parity tests assert through
:func:`~repro.engine.signature.recommendation_fingerprint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.allocation import Allocation
from repro.core.candidates import FragmentationCandidate
from repro.costmodel import (
    PROFILE_FLOAT_FIELDS,
    EvaluationColumns,
    WorkloadEvaluation,
)
from repro.costmodel.model import NUM_METRIC_FIELDS
from repro.errors import AdvisorError
from repro.fragmentation import build_layout
from repro.storage import PrefetchPolicy, PrefetchSetting

__all__ = ["CandidateColumns", "CandidateResultBatch", "PROFILE_FLOAT_FIELDS"]


def _evaluation_columns(evaluation: WorkloadEvaluation) -> EvaluationColumns:
    """The evaluation's columns (columnarizing scalar-path records on demand)."""
    columns = evaluation.columns
    if columns is not None:
        return columns
    return EvaluationColumns.from_records(
        evaluation.per_class, evaluation.layout.fragment_count
    )


@dataclass(frozen=True)
class CandidateColumns:
    """One evaluated candidate, flattened to columnar arrays.

    Everything a candidate adds over its (re-derivable) layout: the columnar
    evaluation block, the prefetch granules and the allocation vectors.
    :meth:`materialize` rebuilds the full :class:`FragmentationCandidate`
    under an engine context — valid exactly when the context's content
    signatures match the key this record is stored under, which the
    content-addressed cache guarantees.
    """

    #: The per-class evaluation state (one definition for the whole column
    #: list — pool transport, cache views and the store all reuse it).
    columns: EvaluationColumns
    #: (fact_pages, bitmap_pages, fact_policy, bitmap_policy).
    prefetch: Tuple[int, int, str, str]
    allocation_scheme: str
    allocation_disks: np.ndarray
    allocation_pages: np.ndarray

    @classmethod
    def from_candidate(cls, candidate: FragmentationCandidate) -> "CandidateColumns":
        """Flatten one evaluated candidate into its columnar record."""
        setting = candidate.prefetch
        allocation = candidate.allocation
        return cls(
            columns=_evaluation_columns(candidate.evaluation),
            prefetch=(
                setting.fact_pages,
                setting.bitmap_pages,
                setting.fact_policy.value,
                setting.bitmap_policy.value,
            ),
            allocation_scheme=allocation.scheme,
            allocation_disks=np.asarray(allocation.disk_of_fragment),
            allocation_pages=np.asarray(allocation.fragment_pages),
        )

    def materialize(self, context, spec) -> FragmentationCandidate:
        """Rebuild the candidate under ``context`` (layout re-derived).

        ``context`` is an :class:`~repro.engine.executor.EngineContext`; the
        layout is rebuilt from its schema/system (cheap — the per-fragment
        arrays are lazy) and the shared bitmap scheme is reattached by
        reference.
        """
        layout = build_layout(
            context.schema,
            spec,
            fact_table=context.fact_name,
            page_size_bytes=context.system.page_size_bytes,
            max_fragments=max(context.config.max_fragments, 1),
        )
        fact_pages, bitmap_pages, fact_policy, bitmap_policy = self.prefetch
        setting = PrefetchSetting(
            fact_pages=fact_pages,
            bitmap_pages=bitmap_pages,
            fact_policy=PrefetchPolicy(fact_policy),
            bitmap_policy=PrefetchPolicy(bitmap_policy),
        )
        evaluation = WorkloadEvaluation(
            layout=layout, prefetch=setting, columns=self.columns
        )
        allocation = Allocation(
            layout=layout,
            system=context.system,
            disk_of_fragment=self.allocation_disks,
            fragment_pages=self.allocation_pages,
            scheme=self.allocation_scheme,
        )
        return FragmentationCandidate(
            spec=spec,
            layout=layout,
            bitmap_scheme=context.bitmap_scheme,
            prefetch=setting,
            evaluation=evaluation,
            allocation=allocation,
        )


@dataclass(frozen=True)
class CandidateResultBatch:
    """One chunk of evaluated candidates, flattened to columnar arrays."""

    #: Plan indices of the candidates, in chunk order.
    indices: Tuple[int, ...]
    #: Query class names (shared by every candidate of the sweep).
    query_names: Tuple[str, ...]
    #: Workload share per class.
    weights: Tuple[float, ...]
    #: (candidates,) int64 — layout fragment count per candidate.
    fragments_total: np.ndarray
    #: (candidates × classes × NUM_METRIC_FIELDS) float64 cube.
    metrics: np.ndarray
    #: (candidates × classes) int64.
    disks_used: np.ndarray
    #: (candidates × classes) bool flags.
    sequential: np.ndarray
    forced: np.ndarray
    #: Per candidate, per class: bitmap attributes used by the chosen plan.
    attributes_used: Tuple[Tuple[Tuple[Tuple[str, str], ...], ...], ...]
    #: Per candidate: (fact_pages, bitmap_pages, fact_policy, bitmap_policy).
    prefetch: Tuple[Tuple[int, int, str, str], ...]
    #: Per candidate: allocation scheme name and vectors.
    allocation_schemes: Tuple[str, ...]
    allocation_disks: Tuple[np.ndarray, ...]
    allocation_pages: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.indices)

    @classmethod
    def from_candidates(
        cls,
        indices: Sequence[int],
        candidates: Sequence[FragmentationCandidate],
    ) -> "CandidateResultBatch":
        """Flatten evaluated candidates into the columnar form.

        Vectorized-path candidates already carry their metric block
        (:attr:`WorkloadEvaluation.columns`), so flattening is a row copy;
        scalar-path candidates are columnarized field by field.
        """
        if len(indices) != len(candidates):
            raise AdvisorError(
                f"result batch got {len(indices)} indices for "
                f"{len(candidates)} candidates"
            )
        if not candidates:
            raise AdvisorError("a result batch needs at least one candidate")
        first = _evaluation_columns(candidates[0].evaluation)
        query_names = first.query_names
        weights = first.weights
        num_candidates = len(candidates)
        num_classes = len(query_names)

        fragments_total = np.empty(num_candidates, dtype=np.int64)
        metrics = np.empty(
            (num_candidates, num_classes, NUM_METRIC_FIELDS), dtype=np.float64
        )
        disks_used = np.empty((num_candidates, num_classes), dtype=np.int64)
        sequential = np.empty((num_candidates, num_classes), dtype=bool)
        forced = np.empty((num_candidates, num_classes), dtype=bool)
        attributes_used = []
        prefetch = []
        allocation_schemes = []
        allocation_disks = []
        allocation_pages = []
        for k, candidate in enumerate(candidates):
            columns = _evaluation_columns(candidate.evaluation)
            if columns.num_classes != num_classes:
                raise AdvisorError(
                    "candidates of one batch must share their query classes"
                )
            fragments_total[k] = columns.fragments_total
            metrics[k] = columns.metrics
            disks_used[k] = columns.disks_used
            sequential[k] = columns.sequential
            forced[k] = columns.forced
            attributes_used.append(columns.attributes_used)
            setting = candidate.prefetch
            prefetch.append(
                (
                    setting.fact_pages,
                    setting.bitmap_pages,
                    setting.fact_policy.value,
                    setting.bitmap_policy.value,
                )
            )
            allocation = candidate.allocation
            allocation_schemes.append(allocation.scheme)
            allocation_disks.append(np.asarray(allocation.disk_of_fragment))
            allocation_pages.append(np.asarray(allocation.fragment_pages))

        return cls(
            indices=tuple(indices),
            query_names=query_names,
            weights=weights,
            fragments_total=fragments_total,
            metrics=metrics,
            disks_used=disks_used,
            sequential=sequential,
            forced=forced,
            attributes_used=tuple(attributes_used),
            prefetch=tuple(prefetch),
            allocation_schemes=tuple(allocation_schemes),
            allocation_disks=tuple(allocation_disks),
            allocation_pages=tuple(allocation_pages),
        )

    def candidate_columns(self, k: int) -> CandidateColumns:
        """The columnar record of the chunk's ``k``-th candidate (row copies)."""
        return CandidateColumns(
            columns=EvaluationColumns(
                query_names=self.query_names,
                weights=self.weights,
                fragments_total=int(self.fragments_total[k]),
                metrics=self.metrics[k].copy(),
                disks_used=self.disks_used[k].copy(),
                sequential=self.sequential[k].copy(),
                forced=self.forced[k].copy(),
                attributes_used=self.attributes_used[k],
            ),
            prefetch=self.prefetch[k],
            allocation_scheme=self.allocation_schemes[k],
            allocation_disks=self.allocation_disks[k],
            allocation_pages=self.allocation_pages[k],
        )

    def to_candidates(self, context) -> List[Tuple[int, FragmentationCandidate]]:
        """Re-materialize ``(index, candidate)`` pairs from the columns.

        ``context`` is the :class:`~repro.engine.executor.EngineContext` the
        chunk was evaluated under; the rebuilt evaluations stay columnar, so
        no per-class record graph is materialized on the transport path.
        """
        return [
            (index, self.candidate_columns(k).materialize(context, context.specs[index]))
            for k, index in enumerate(self.indices)
        ]
