"""Columnar worker→parent result batches for the parallel executor.

Worker→parent result pickling is the process pool's dominant overhead: a
:class:`~repro.core.candidates.FragmentationCandidate` drags a deep object
graph of per-class :class:`~repro.costmodel.QueryCost` records (each with a
frozen :class:`~repro.costmodel.QueryAccessProfile`) through pickle for every
candidate.  :class:`CandidateResultBatch` flattens one chunk's candidates into
a handful of numpy arrays over the (candidate × query class) axes plus the
small per-candidate scalars (prefetch granules, allocation vectors), and the
parent re-materializes the exact same candidates from the columns.

Reconstruction is exact: every float travels as the same IEEE-754 double it
was computed as, layouts are rebuilt from the same ``(schema, spec, page
size)`` inputs (they are deterministic value objects), and the bitmap scheme
is taken from the shared engine context — so a reconstructed candidate is
bit-identical to the worker's original, which the parity tests assert through
:func:`~repro.engine.signature.recommendation_fingerprint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.allocation import Allocation
from repro.core.candidates import FragmentationCandidate
from repro.costmodel import QueryAccessProfile, QueryCost, WorkloadEvaluation
from repro.errors import AdvisorError
from repro.fragmentation import build_layout
from repro.storage import PrefetchPolicy, PrefetchSetting

__all__ = ["CandidateResultBatch", "PROFILE_FLOAT_FIELDS"]

#: Float columns of the metric cube, in :class:`QueryAccessProfile` field
#: order; the last two cube slots hold the per-class I/O cost and response
#: time of the :class:`QueryCost` record.
PROFILE_FLOAT_FIELDS = (
    "fragments_accessed",
    "rows_in_accessed_fragments",
    "qualifying_rows",
    "fact_pages_per_fragment",
    "fact_pages_accessed",
    "bitmap_pages_accessed",
    "fact_io_requests",
    "bitmap_io_requests",
    "fact_pages_transferred",
    "bitmap_pages_transferred",
)


@dataclass(frozen=True)
class CandidateResultBatch:
    """One chunk of evaluated candidates, flattened to columnar arrays."""

    #: Plan indices of the candidates, in chunk order.
    indices: Tuple[int, ...]
    #: Query class names (shared by every candidate of the sweep).
    query_names: Tuple[str, ...]
    #: Workload share per class.
    weights: Tuple[float, ...]
    #: (candidates × classes × len(PROFILE_FLOAT_FIELDS)+2) float64 cube.
    metrics: np.ndarray
    #: (candidates × classes) int64.
    disks_used: np.ndarray
    #: (candidates × classes) bool flags.
    sequential: np.ndarray
    forced: np.ndarray
    #: Per candidate, per class: bitmap attributes used by the chosen plan.
    attributes_used: Tuple[Tuple[Tuple[Tuple[str, str], ...], ...], ...]
    #: Per candidate: (fact_pages, bitmap_pages, fact_policy, bitmap_policy).
    prefetch: Tuple[Tuple[int, int, str, str], ...]
    #: Per candidate: allocation scheme name and vectors.
    allocation_schemes: Tuple[str, ...]
    allocation_disks: Tuple[np.ndarray, ...]
    allocation_pages: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.indices)

    @classmethod
    def from_candidates(
        cls,
        indices: Sequence[int],
        candidates: Sequence[FragmentationCandidate],
    ) -> "CandidateResultBatch":
        """Flatten evaluated candidates into the columnar form."""
        if len(indices) != len(candidates):
            raise AdvisorError(
                f"result batch got {len(indices)} indices for "
                f"{len(candidates)} candidates"
            )
        if not candidates:
            raise AdvisorError("a result batch needs at least one candidate")
        first = candidates[0].evaluation.per_class
        query_names = tuple(cost.query_name for cost in first)
        weights = tuple(cost.weight for cost in first)
        num_candidates = len(candidates)
        num_classes = len(query_names)
        num_fields = len(PROFILE_FLOAT_FIELDS) + 2

        metrics = np.empty((num_candidates, num_classes, num_fields), dtype=np.float64)
        disks_used = np.empty((num_candidates, num_classes), dtype=np.int64)
        sequential = np.empty((num_candidates, num_classes), dtype=bool)
        forced = np.empty((num_candidates, num_classes), dtype=bool)
        attributes_used = []
        prefetch = []
        allocation_schemes = []
        allocation_disks = []
        allocation_pages = []
        for k, candidate in enumerate(candidates):
            per_class = candidate.evaluation.per_class
            if len(per_class) != num_classes:
                raise AdvisorError(
                    "candidates of one batch must share their query classes"
                )
            attribute_rows = []
            for c, cost in enumerate(per_class):
                profile = cost.profile
                for f, field in enumerate(PROFILE_FLOAT_FIELDS):
                    metrics[k, c, f] = getattr(profile, field)
                metrics[k, c, -2] = cost.io_cost_ms
                metrics[k, c, -1] = cost.response_time_ms
                disks_used[k, c] = cost.disks_used
                sequential[k, c] = profile.sequential_fact_access
                forced[k, c] = profile.forced_full_scan
                attribute_rows.append(profile.bitmap_attributes_used)
            attributes_used.append(tuple(attribute_rows))
            setting = candidate.prefetch
            prefetch.append(
                (
                    setting.fact_pages,
                    setting.bitmap_pages,
                    setting.fact_policy.value,
                    setting.bitmap_policy.value,
                )
            )
            allocation = candidate.allocation
            allocation_schemes.append(allocation.scheme)
            allocation_disks.append(np.asarray(allocation.disk_of_fragment))
            allocation_pages.append(np.asarray(allocation.fragment_pages))

        return cls(
            indices=tuple(indices),
            query_names=query_names,
            weights=weights,
            metrics=metrics,
            disks_used=disks_used,
            sequential=sequential,
            forced=forced,
            attributes_used=tuple(attributes_used),
            prefetch=tuple(prefetch),
            allocation_schemes=tuple(allocation_schemes),
            allocation_disks=tuple(allocation_disks),
            allocation_pages=tuple(allocation_pages),
        )

    def to_candidates(self, context) -> List[Tuple[int, FragmentationCandidate]]:
        """Re-materialize ``(index, candidate)`` pairs from the columns.

        ``context`` is the :class:`~repro.engine.executor.EngineContext` the
        chunk was evaluated under; layouts are rebuilt from its specs (cheap —
        the per-fragment arrays are lazy) and the shared bitmap scheme is
        reattached by reference.
        """
        pairs: List[Tuple[int, FragmentationCandidate]] = []
        for k, index in enumerate(self.indices):
            spec = context.specs[index]
            layout = build_layout(
                context.schema,
                spec,
                fact_table=context.fact_name,
                page_size_bytes=context.system.page_size_bytes,
                max_fragments=max(context.config.max_fragments, 1),
            )
            fact_pages, bitmap_pages, fact_policy, bitmap_policy = self.prefetch[k]
            setting = PrefetchSetting(
                fact_pages=fact_pages,
                bitmap_pages=bitmap_pages,
                fact_policy=PrefetchPolicy(fact_policy),
                bitmap_policy=PrefetchPolicy(bitmap_policy),
            )
            per_class = []
            for c, query_name in enumerate(self.query_names):
                values = self.metrics[k, c]
                fields = {
                    field: float(values[f])
                    for f, field in enumerate(PROFILE_FLOAT_FIELDS)
                }
                profile = QueryAccessProfile(
                    query_name=query_name,
                    fragments_total=layout.fragment_count,
                    sequential_fact_access=bool(self.sequential[k, c]),
                    forced_full_scan=bool(self.forced[k, c]),
                    bitmap_attributes_used=self.attributes_used[k][c],
                    **fields,
                )
                per_class.append(
                    QueryCost(
                        query_name=query_name,
                        weight=self.weights[c],
                        profile=profile,
                        io_cost_ms=float(values[-2]),
                        response_time_ms=float(values[-1]),
                        disks_used=int(self.disks_used[k, c]),
                    )
                )
            evaluation = WorkloadEvaluation(
                layout=layout, prefetch=setting, per_class=tuple(per_class)
            )
            allocation = Allocation(
                layout=layout,
                system=context.system,
                disk_of_fragment=self.allocation_disks[k],
                fragment_pages=self.allocation_pages[k],
                scheme=self.allocation_schemes[k],
            )
            pairs.append(
                (
                    index,
                    FragmentationCandidate(
                        spec=spec,
                        layout=layout,
                        bitmap_scheme=context.bitmap_scheme,
                        prefetch=setting,
                        evaluation=evaluation,
                        allocation=allocation,
                    ),
                )
            )
        return pairs
