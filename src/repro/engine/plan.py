"""Evaluation plans: the unit-of-work expansion of a candidate sweep.

The advisor's prediction layer is an embarrassingly parallel sweep: every
surviving fragmentation candidate is evaluated against every query class of
the mix, and the per-class results are folded into one
:class:`~repro.costmodel.WorkloadEvaluation` per candidate.  An
:class:`EvaluationPlan` makes that shape explicit *before* execution: it
expands the (candidate × query class) work units up front, attaches a cost
estimate to every candidate (the fragment count — a good proxy, since layout
materialization and allocation scale with it), and partitions the candidates
into deterministic, load-balanced chunks for the executor.

Per-candidate granularity is the dispatch unit (a candidate's query classes
share its layout, prefetch resolution and allocation, so splitting a candidate
across workers would duplicate that work); the unit expansion is still exposed
because it is the engine's accounting currency — progress, cache sizing and
the benchmark's work counts are all unit-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec
from repro.schema import StarSchema
from repro.workload import QueryMix

__all__ = ["WorkUnit", "EvaluationPlan"]


@dataclass(frozen=True)
class WorkUnit:
    """One (candidate, query class) evaluation of the sweep."""

    spec_index: int
    query_index: int
    spec_label: str
    query_name: str
    #: Fragment count of the candidate — the unit's relative cost estimate.
    estimated_fragments: int


@dataclass(frozen=True)
class EvaluationPlan:
    """The expanded work of one candidate sweep.

    ``specs`` preserves the caller's candidate order — the executor reports
    results in exactly this order regardless of how the work is partitioned.
    """

    specs: Tuple[FragmentationSpec, ...]
    query_names: Tuple[str, ...]
    #: Per-candidate cost estimates, index-aligned with ``specs``.
    spec_costs: Tuple[int, ...]

    @classmethod
    def build(
        cls,
        specs: Sequence[FragmentationSpec],
        workload: QueryMix,
        schema: StarSchema,
    ) -> "EvaluationPlan":
        """Expand ``specs`` × ``workload`` into an evaluation plan."""
        specs = tuple(specs)
        if not specs:
            raise AdvisorError("an evaluation plan needs at least one candidate spec")
        query_names = tuple(query.name for query, _ in workload.weighted_items())
        if not query_names:
            raise AdvisorError("an evaluation plan needs at least one query class")
        spec_costs = tuple(spec.fragment_count(schema) for spec in specs)
        return cls(
            specs=specs,
            query_names=query_names,
            spec_costs=spec_costs,
        )

    @cached_property
    def units(self) -> Tuple[WorkUnit, ...]:
        """The (candidate × query class) work units, expanded on first use.

        Lazy: the expansion materializes ``num_candidates × num_classes``
        objects, which is pure accounting (progress, cache sizing, benchmark
        work counts) — the executor dispatches per candidate and never needs
        it, so plain sweeps skip the cost entirely.
        """
        return tuple(
            WorkUnit(
                spec_index=spec_index,
                query_index=query_index,
                spec_label=spec.label,
                query_name=query_name,
                estimated_fragments=self.spec_costs[spec_index],
            )
            for spec_index, spec in enumerate(self.specs)
            for query_index, query_name in enumerate(self.query_names)
        )

    # -- shape ------------------------------------------------------------------

    @property
    def num_candidates(self) -> int:
        """Number of candidate specs in the sweep."""
        return len(self.specs)

    @property
    def num_units(self) -> int:
        """Number of (candidate × query class) work units."""
        return len(self.units)

    def units_for_spec(self, spec_index: int) -> Tuple[WorkUnit, ...]:
        """The work units of one candidate."""
        if not 0 <= spec_index < len(self.specs):
            raise AdvisorError(
                f"spec index {spec_index} out of range [0, {len(self.specs)})"
            )
        per_spec = len(self.query_names)
        return self.units[spec_index * per_spec : (spec_index + 1) * per_spec]

    # -- axis-structure grouping --------------------------------------------------

    def axis_groups(self, indices=None, max_size: int = 0) -> List[List[int]]:
        """Candidate indices grouped by their spec's axis structure.

        Groups preserve first-seen sweep order, and indices within a group
        stay in sweep order — the unit at which the candidate-axis executor
        stacks layouts into one (candidate × class) batch
        (:mod:`repro.costmodel.batch`) and the serial executor reports
        progress / honours cancellation.

        A positive ``max_size`` splits larger groups into consecutive
        group-pure sub-chunks of at most that many candidates: batching is a
        pure execution strategy (the kernels are elementwise per candidate),
        so splitting never changes a number — it only bounds progress /
        cancellation latency and restores load balance when one axis
        structure dominates a sweep.
        """
        if indices is None:
            indices = range(len(self.specs))
        groups: dict = {}
        for index in indices:
            groups.setdefault(self.specs[index].axis_structure, []).append(index)
        if max_size <= 0:
            return list(groups.values())
        return [
            group[start : start + max_size]
            for group in groups.values()
            for start in range(0, len(group), max_size)
        ]

    # -- partitioning -----------------------------------------------------------

    def partition(self, jobs: int) -> List[List[int]]:
        """Split all candidate indices into ``jobs`` balanced chunks."""
        return self.partition_indices(range(len(self.specs)), jobs)

    def partition_indices(
        self, indices, jobs: int, by_axis_structure: bool = False
    ) -> List[List[int]]:
        """Split a subset of candidate indices into ``jobs`` balanced chunks.

        Deterministic longest-processing-time assignment: candidates are
        considered in decreasing cost (fragment count), each going to the
        currently least-loaded chunk; ties break towards the earlier candidate
        and the lower chunk number.  Within a chunk, indices are sorted so the
        executor streams each chunk in sweep order.  Empty chunks are dropped
        (when ``jobs`` exceeds the candidate count).

        With ``by_axis_structure=True`` the assignment unit is an
        axis-structure group (see :meth:`axis_groups`) instead of a single
        candidate, so same-structure candidates land on the same worker and
        the candidate-axis kernels batch at full width.  Groups larger than
        one ``jobs``-th of the sweep are split into group-pure sub-units, so
        a sweep dominated by one axis structure still spreads over all
        workers.  Still deterministic LPT: units are considered in
        decreasing total cost, ties towards the unit containing the earliest
        candidate.
        """
        if jobs < 1:
            raise AdvisorError(f"jobs must be at least 1, got {jobs}")
        if by_axis_structure:
            indices = list(indices)
            units = self.axis_groups(
                indices, max_size=max(1, -(-len(indices) // jobs))
            )
        else:
            units = [[index] for index in indices]
        costs = [
            sum(max(1, self.spec_costs[index]) for index in unit) for unit in units
        ]
        order = sorted(
            range(len(units)), key=lambda u: (-costs[u], units[u][0])
        )
        loads = [0] * jobs
        chunks: List[List[int]] = [[] for _ in range(jobs)]
        for u in order:
            target = min(range(jobs), key=lambda job: (loads[job], job))
            chunks[target].extend(units[u])
            loads[target] += costs[u]
        for chunk in chunks:
            chunk.sort()
        return [chunk for chunk in chunks if chunk]

    def describe(self) -> str:
        """One-line summary used by logs and the benchmark."""
        return (
            f"evaluation plan: {self.num_candidates} candidates x "
            f"{len(self.query_names)} query classes = {self.num_units} work units, "
            f"{sum(self.spec_costs):,} fragments total"
        )
