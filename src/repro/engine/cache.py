"""Memoized evaluation cache for the candidate-evaluation engine.

The advisor's hot path evaluates the analytical cost model for every
(candidate × query class) pair — and evaluates many of those pairs *twice*
(once with a unit prefetch granule to derive typical run lengths for the
prefetch optimizer, once with the resolved granules), while what-if tuning
studies and comparisons re-evaluate the same pairs under varied system
parameters.  The cache removes the recomputation:

* **Access structures** (:class:`repro.costmodel.AccessStructure`) are the
  expensive, prefetch-independent part of the estimation.  They are keyed on
  ``(layout, query, bitmap scheme)`` content signatures — deliberately *not*
  on the system parameters or prefetch setting — so the run-length pass and
  the evaluation pass of one candidate share a single computation, and tuning
  studies that vary disks, architectures, prefetch granules or query weights
  reuse every structure.
* **Candidates** (:class:`repro.core.FragmentationCandidate`) are whole
  evaluations keyed on everything that can move a number (schema, fact table,
  spec, workload, system, bitmap scheme, the config knobs the evaluation
  reads).  They make warm re-evaluations — repeated ``recommend()`` calls,
  comparisons over already-studied specs — skip layout materialization,
  prefetch resolution, the cost sweep and the allocation entirely.

All cached values are immutable (frozen dataclasses), and every cache entry is
the deterministic function of its key, so sharing a cache can never change a
result — only skip its recomputation.  The parity tests assert exactly that.

Because keys are content signatures, entries are also valid *across
processes*: :meth:`EvaluationCache.attach` hooks the cache to a persistent
:class:`~repro.engine.store.CacheStore` directory (warm-start loads on attach,
:meth:`EvaluationCache.persist` spills after a sweep), which is how repeated
CLI invocations and tuning sessions reuse each other's evaluations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.engine.signature import (
    layout_signature,
    object_signature,
    query_structure_signature,
    stable_digest,
)

__all__ = ["CacheStats", "EvaluationCache"]

#: Sentinel distinguishing "absent" from cached falsy values.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`EvaluationCache`."""

    structure_hits: int = 0
    structure_misses: int = 0
    candidate_hits: int = 0
    candidate_misses: int = 0
    #: Hits answered by entries that were loaded from a persistent store
    #: (subsets of ``structure_hits`` / ``candidate_hits``).
    structure_disk_hits: int = 0
    candidate_disk_hits: int = 0
    #: Store robustness counters, accumulated from the attached store's
    #: :class:`~repro.engine.store.StoreLoadStats` deltas on each
    #: :meth:`EvaluationCache.load` — how often warm starts were degraded by
    #: a salt (version) mismatch, skipped individually corrupt entries, or
    #: fell back to an empty load because a whole file was unreadable.
    store_salt_mismatches: int = 0
    store_corrupt_entries: int = 0
    store_fallback_loads: int = 0

    @property
    def hits(self) -> int:
        """Total cache hits over both entry kinds."""
        return self.structure_hits + self.candidate_hits

    @property
    def misses(self) -> int:
        """Total cache misses over both entry kinds."""
        return self.structure_misses + self.candidate_misses

    @property
    def lookups(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def disk_hits(self) -> int:
        """Total hits answered by entries loaded from a persistent store."""
        return self.structure_disk_hits + self.candidate_disk_hits

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of probes answered from disk-loaded entries (0.0 when unused)."""
        lookups = self.lookups
        return self.disk_hits / lookups if lookups else 0.0

    @property
    def store_load_anomalies(self) -> int:
        """Total store-load anomalies observed (mismatches + corrupt + fallbacks)."""
        return (
            self.store_salt_mismatches
            + self.store_corrupt_entries
            + self.store_fallback_loads
        )

    def describe(self) -> str:
        """One-line summary used by the benchmark and the CLI."""
        line = (
            f"cache: {self.hits}/{self.lookups} hits ({self.hit_rate:.1%}); "
            f"structures {self.structure_hits}h/{self.structure_misses}m, "
            f"candidates {self.candidate_hits}h/{self.candidate_misses}m, "
            f"disk {self.disk_hits}h"
        )
        if self.store_load_anomalies:
            line += (
                f"; store anomalies {self.store_salt_mismatches} salt/"
                f"{self.store_corrupt_entries} corrupt/"
                f"{self.store_fallback_loads} fallback"
            )
        return line


# lint: not-thread-safe instances=cache
class EvaluationCache:
    """Content-addressed memo of access structures and query costs.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of entries kept *per kind*.  When the
        bound is reached the oldest-inserted entries are evicted (FIFO — the
        advisor's access pattern is build-once/reuse-many, so recency tracking
        buys nothing over insertion order).  ``None`` (default) means
        unbounded.  Structure entries are a few hundred bytes each; candidate
        entries retain the whole evaluation *including the per-fragment
        allocation arrays* (roughly 16 bytes per fragment), so a cache that
        outlives many large sweeps should set a bound — e.g. ``max_entries``
        of a few thousand keeps the candidate store in the tens of MB for
        10k-fragment layouts.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive when set, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._structures: Dict[Tuple[str, ...], Any] = {}
        self._candidates: Dict[Tuple[str, ...], Any] = {}
        #: Compiled ClassMatrix memo (shared across sessions, never persisted;
        #: cheap to rebuild, but re-compiling on every system-only what-if
        #: delta wastes the per-edit constant).  Not counted by ``len()``.
        self._matrices: Dict[str, Any] = {}
        #: Candidate-exclusion reports (threshold diagnostics + surviving
        #: specs), keyed on enumeration-input signatures; persisted alongside
        #: the store so warm-from-disk runs skip re-deriving the thresholds.
        self._reports: Dict[Tuple[str, ...], Any] = {}
        # -- persistence state (see the "persistence" section below) --
        #: Keys whose entries came from a persistent store (disk-hit stats).
        self._disk_keys: Set[Tuple[str, ...]] = set()
        #: Keys this process actually used (hit or inserted) since the last
        #: save — the store's LRU garbage collection refreshes exactly these,
        #: so entries a warm run still touches stay young while dead weight
        #: ages out.  Loading alone does not touch.
        self._touched: Set[Tuple[str, ...]] = set()
        #: Backing store attached via :meth:`attach`; ``None`` = memory only.
        self._store = None
        #: True when the cache holds entries the attached store has not seen.
        self._dirty = False
        #: Total entries loaded from persistent stores over this cache's life.
        self.loaded_from_disk = 0

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def _structure_key(layout, query, bitmap_scheme) -> Tuple[str, ...]:
        # Keyed on the weight-independent query signature: a reweighted mix
        # reuses every structure (weights only enter the QueryCost records,
        # which the candidate-level entries cover).
        return (
            layout_signature(layout),
            query_structure_signature(query),
            object_signature(bitmap_scheme),
        )

    @staticmethod
    def _structure_batch_key(layout, matrix) -> Tuple[str, ...]:
        # The matrix signature is weight-independent (queries' structure plus
        # bitmap scheme plus schema), mirroring the per-query structure keys:
        # reweighted mixes reuse every cached batch.
        return ("batch", layout_signature(layout), matrix.signature)

    @staticmethod
    def workload_signature(workload) -> str:
        """Content fingerprint of a query mix (queries plus normalized shares)."""
        state = getattr(workload, "__dict__", None)
        if state is not None:
            # Own memo slot — never share "_engine_signature" with
            # object_signature, which computes a different digest.
            cached = state.get("_engine_workload_signature")
            if cached is not None:
                return cached
        parts = []
        for query, share in workload.weighted_items():
            parts.append(object_signature(query))
            parts.append(repr(float(share)))
        signature = stable_digest("QueryMix", *parts)
        if state is not None:
            state["_engine_workload_signature"] = signature
        return signature

    @classmethod
    def candidate_key(cls, context, spec) -> Tuple[str, ...]:
        """Key of one whole candidate evaluation under an engine context.

        Covers every input the evaluation reads: schema, fact table, spec,
        workload, system, bitmap scheme and the two config knobs that change
        the result (the materialization bound and the allocation skew
        threshold).
        """
        return (
            object_signature(context.schema),
            context.fact_name,
            spec.label,
            cls.workload_signature(context.workload),
            object_signature(context.system),
            object_signature(context.bitmap_scheme),
            str(context.config.max_fragments),
            repr(float(context.config.allocation_skew_cv)),
        )

    # -- lookup/insert ----------------------------------------------------------

    def _evict_oldest(self, store: Dict[Tuple[str, ...], Any]) -> None:
        """Drop the oldest-inserted entry (FIFO) and its disk-origin flag."""
        evicted = next(iter(store))
        store.pop(evicted)
        self._disk_keys.discard(evicted)

    def _memoized_structure(self, key, compute):
        """Shared lookup/insert/eviction body of the two structure stores."""
        store = self._structures
        value = store.get(key, _MISSING)
        stats = self.stats
        if value is not _MISSING:
            stats.structure_hits += 1
            if key in self._disk_keys:
                stats.structure_disk_hits += 1
            self._touched.add(key)
            return value
        stats.structure_misses += 1
        value = compute()
        if self.max_entries is not None and len(store) >= self.max_entries:
            self._evict_oldest(store)
        store[key] = value
        # Computed in-process: hits on it must not count as disk hits, even
        # if an earlier incarnation of the entry came from the store.
        self._disk_keys.discard(key)
        self._touched.add(key)
        self._dirty = True
        return value

    def access_structure(self, layout, query, bitmap_scheme, compute):
        """Cached prefetch-independent access structure (see module docstring)."""
        return self._memoized_structure(
            self._structure_key(layout, query, bitmap_scheme), compute
        )

    def access_structure_batch(self, layout, matrix, compute):
        """Cached class-axis structure batch of one layout.

        The columnar counterpart of :meth:`access_structure`: one entry covers
        *every* query class of the compiled
        :class:`~repro.workload.ClassMatrix`, keyed on (layout, matrix)
        content signatures and stored alongside the scalar structure entries
        (same store, same stats counters, same worker→parent bulk transfer).
        """
        return self._memoized_structure(
            self._structure_batch_key(layout, matrix), compute
        )

    def get_structure_batch(self, layout, matrix):
        """Probe for a class-axis structure batch; ``None`` on miss (counted).

        The split get/put surface of :meth:`access_structure_batch`: the
        candidate-axis executor probes every layout of a chunk first and
        computes all misses as one stacked batch, so the compute cannot be
        expressed as a per-entry ``compute`` callback.  Counter semantics are
        identical — one structure probe per candidate either way.
        """
        key = self._structure_batch_key(layout, matrix)
        value = self._structures.get(key, _MISSING)
        stats = self.stats
        if value is not _MISSING:
            stats.structure_hits += 1
            if key in self._disk_keys:
                stats.structure_disk_hits += 1
            self._touched.add(key)
            return value
        stats.structure_misses += 1
        return None

    def put_structure_batch(self, layout, matrix, value) -> None:
        """Insert a structure batch computed elsewhere (stacked compute).

        Not a probe — no counter moves; the miss was already counted by the
        preceding :meth:`get_structure_batch`.
        """
        store = self._structures
        key = self._structure_batch_key(layout, matrix)
        if (
            self.max_entries is not None
            and key not in store
            and len(store) >= self.max_entries
        ):
            self._evict_oldest(store)
        store[key] = value
        self._disk_keys.discard(key)
        self._touched.add(key)
        self._dirty = True

    def candidate(self, context, spec, compute):
        """Cached whole-candidate evaluation under ``context``."""
        value = self.get_candidate(context, spec)
        if value is not None:
            return value
        value = compute()
        self.put_candidate(context, spec, value)
        return value

    def get_candidate(self, context, spec):
        """Probe for a whole-candidate evaluation; ``None`` on miss.

        The probe is counted (hit or miss).  The parallel executor uses this
        to answer warm sweeps from the cache and dispatch only the misses to
        the worker pool.

        Entries loaded from a persistent store are deferred columnar records
        (:class:`~repro.engine.result.CandidateColumns`); the first probe
        materializes the candidate under the probing context — valid because
        the content-addressed key covers every input the materialization
        reads — and upgrades the entry in place so later probes are free.
        """
        key = self.candidate_key(context, spec)
        value = self._candidates.get(key, _MISSING)
        if value is _MISSING:
            self.stats.candidate_misses += 1
            return None
        self.stats.candidate_hits += 1
        if key in self._disk_keys:
            self.stats.candidate_disk_hits += 1
        self._touched.add(key)
        from repro.engine.result import CandidateColumns

        if isinstance(value, CandidateColumns):
            value = value.materialize(context, spec)
            self._candidates[key] = value
        return value

    def put_candidate(self, context, spec, candidate) -> None:
        """Insert a candidate evaluated elsewhere (e.g. by a pool worker).

        Not a probe — no counter moves; the miss was already counted by the
        ``get_candidate`` that preceded the computation.
        """
        store = self._candidates
        key = self.candidate_key(context, spec)
        if (
            self.max_entries is not None
            and key not in store
            and len(store) >= self.max_entries
        ):
            self._evict_oldest(store)
        store[key] = candidate
        self._disk_keys.discard(key)
        self._touched.add(key)
        self._dirty = True

    # -- bulk transfer (worker -> parent) ---------------------------------------

    def structure_items(self):
        """Iterate the raw ``(key, structure)`` entries (for bulk transfer)."""
        return self._structures.items()

    def merge_structures(self, items, touched: bool = True) -> None:
        """Insert structure entries computed elsewhere (e.g. by pool workers).

        Not probes — no counters move; the workers already accounted for the
        computations in their own stats.  ``touched=False`` (the bulk load
        from a persistent store) merges without marking the entries as used
        by this process.
        """
        store = self._structures
        for key, value in items:
            if (
                self.max_entries is not None
                and key not in store
                and len(store) >= self.max_entries
            ):
                self._evict_oldest(store)
            store[key] = value
            self._disk_keys.discard(key)
            if touched:
                self._touched.add(key)
            self._dirty = True

    # -- compiled class matrices (shared, in-memory only) -------------------------

    def class_matrix(self, key: str, compute):
        """Memoized compiled :class:`~repro.workload.ClassMatrix`.

        Keyed on a content signature over (schema, workload, bitmap scheme,
        fact table), so sessions sharing one cache — in particular
        ``with_delta`` edits that change only the system — stop re-compiling
        an unchanged matrix.  In-memory only: matrices are cheap to rebuild
        and always re-derivable, so they are never spilled to the store (and
        not counted by ``len()`` or the hit/miss stats).  ``max_entries``
        bounds this memo like the evaluation stores (FIFO), so a long-lived
        shared cache serving many warehouses cannot grow without limit.
        """
        value = self._matrices.get(key)
        if value is None:
            value = compute()
            if (
                self.max_entries is not None
                and len(self._matrices) >= self.max_entries
            ):
                self._matrices.pop(next(iter(self._matrices)))
            self._matrices[key] = value
        return value

    # -- candidate-exclusion reports ---------------------------------------------

    def get_exclusions(self, key: Tuple[str, ...]):
        """The cached exclusion payload for an enumeration-input key (or None).

        Not counted by the hit/miss stats: exclusion evaluation is part of
        candidate *generation*, and its reuse must not skew the evaluation
        cache's hit-rate diagnostics.
        """
        payload = self._reports.get(key)
        if payload is not None:
            self._touched.add(key)
        return payload

    def put_exclusions(self, key: Tuple[str, ...], payload) -> None:
        """Insert an exclusion payload (JSON-able dict; persisted with the store).

        Bounded by ``max_entries`` like the evaluation stores (FIFO), so the
        persisted report set cannot grow without limit either.
        """
        if (
            self.max_entries is not None
            and key not in self._reports
            and len(self._reports) >= self.max_entries
        ):
            self._reports.pop(next(iter(self._reports)))
        self._reports[key] = payload
        self._touched.add(key)
        self._dirty = True

    # -- persistence (see repro.engine.store) -----------------------------------

    @property
    def store(self):
        """The attached :class:`~repro.engine.store.CacheStore` (or ``None``)."""
        return self._store

    @property
    def dirty(self) -> bool:
        """True when the cache holds entries its attached store has not seen."""
        return self._dirty

    def load(self, store) -> int:
        """Bulk-load a persistent store's entries into this cache.

        Loaded entries are tracked so later hits on them count as *disk hits*
        (:attr:`CacheStats.disk_hits`).  Candidate entries arrive as deferred
        columnar records and materialize on their first warm probe (see
        :meth:`get_candidate`).  Loading never marks the cache dirty — the
        entries are already on disk — and a missing, corrupted or
        version-mismatched store simply loads zero entries.  Returns the
        number of entries loaded.
        """
        # Snapshot-delta: the store's load_stats are cumulative (save() also
        # re-reads internally for its merge), so only the counters this load
        # produced are folded into this cache's stats.
        before = store.load_stats.copy()
        structures, candidates, reports = store.load()
        after = store.load_stats
        self.stats.store_salt_mismatches += (
            after.salt_mismatches - before.salt_mismatches
        )
        self.stats.store_corrupt_entries += (
            after.corrupt_entries - before.corrupt_entries
        )
        self.stats.store_fallback_loads += (
            after.fallback_loads - before.fallback_loads
        )
        dirty = self._dirty
        self.merge_structures(structures.items(), touched=False)
        target = self._candidates
        for key, value in candidates.items():
            if (
                self.max_entries is not None
                and key not in target
                and len(target) >= self.max_entries
            ):
                self._evict_oldest(target)
            target[key] = value
        for key, payload in reports.items():
            self._reports.setdefault(key, payload)
        self._dirty = dirty
        self._disk_keys.update(structures.keys())
        self._disk_keys.update(candidates.keys())
        loaded = len(structures) + len(candidates) + len(reports)
        self.loaded_from_disk += loaded
        return loaded

    def save(self, store) -> Optional[int]:
        """Spill the whole cache content to a persistent store (atomic merge).

        The store merges the entries with the directory's current content and
        receives the set of keys this process touched since the last save, so
        its LRU garbage collection refreshes exactly the entries a warm run
        still uses.  Returns the number of entries the store holds after the
        save, or ``None`` when the store is unwritable (best-effort — never
        an error).
        """
        written = store.save(
            self._structures,
            self._candidates,
            self._reports,
            touched=self._touched,
        )
        if written is not None:
            self._dirty = False
            self._touched = set()
        return written

    def attach(self, store) -> int:
        """Backing-store hook: load ``store`` and remember it for :meth:`persist`.

        Attaching the already-attached directory again is a no-op, so engines
        and tuning studies sharing one cache never reload the same store.
        Switching to a *different* directory first flushes unsaved entries to
        the old store, so work accumulated for one directory is never
        silently redirected away from it.  Returns the number of entries
        loaded.
        """
        if self._store is not None:
            if os.path.abspath(self._store.cache_dir) == os.path.abspath(
                store.cache_dir
            ):
                return 0
            self.persist()
        self._store = store
        return self.load(store)

    def persist(self) -> Optional[int]:
        """Save to the attached store when there is unsaved content.

        No-op (returns ``None``) without an attached store or when nothing
        changed since the last save; otherwise returns :meth:`save`'s result.
        """
        if self._store is None or not self._dirty:
            return None
        return self.save(self._store)

    # -- maintenance ------------------------------------------------------------

    def __len__(self) -> int:
        # Evaluation entries only; the matrix memo and the exclusion reports
        # are compiled-input bookkeeping, not evaluations.
        return len(self._structures) + len(self._candidates)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._structures.clear()
        self._candidates.clear()
        self._matrices.clear()
        self._reports.clear()
        self._disk_keys.clear()
        self._touched.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are preserved)."""
        self.stats = CacheStats()
