"""Memoized evaluation cache for the candidate-evaluation engine.

The advisor's hot path evaluates the analytical cost model for every
(candidate × query class) pair — and evaluates many of those pairs *twice*
(once with a unit prefetch granule to derive typical run lengths for the
prefetch optimizer, once with the resolved granules), while what-if tuning
studies and comparisons re-evaluate the same pairs under varied system
parameters.  The cache removes the recomputation:

* **Access structures** (:class:`repro.costmodel.AccessStructure`) are the
  expensive, prefetch-independent part of the estimation.  They are keyed on
  ``(layout, query, bitmap scheme)`` content signatures — deliberately *not*
  on the system parameters or prefetch setting — so the run-length pass and
  the evaluation pass of one candidate share a single computation, and tuning
  studies that vary disks, architectures, prefetch granules or query weights
  reuse every structure.
* **Candidates** (:class:`repro.core.FragmentationCandidate`) are whole
  evaluations keyed on everything that can move a number (schema, fact table,
  spec, workload, system, bitmap scheme, the config knobs the evaluation
  reads).  They make warm re-evaluations — repeated ``recommend()`` calls,
  comparisons over already-studied specs — skip layout materialization,
  prefetch resolution, the cost sweep and the allocation entirely.

All cached values are immutable (frozen dataclasses), and every cache entry is
the deterministic function of its key, so sharing a cache can never change a
result — only skip its recomputation.  The parity tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.engine.signature import (
    layout_signature,
    object_signature,
    query_structure_signature,
    stable_digest,
)

__all__ = ["CacheStats", "EvaluationCache"]

#: Sentinel distinguishing "absent" from cached falsy values.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`EvaluationCache`."""

    structure_hits: int = 0
    structure_misses: int = 0
    candidate_hits: int = 0
    candidate_misses: int = 0

    @property
    def hits(self) -> int:
        """Total cache hits over both entry kinds."""
        return self.structure_hits + self.candidate_hits

    @property
    def misses(self) -> int:
        """Total cache misses over both entry kinds."""
        return self.structure_misses + self.candidate_misses

    @property
    def lookups(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        """One-line summary used by the benchmark and the CLI."""
        return (
            f"cache: {self.hits}/{self.lookups} hits ({self.hit_rate:.1%}); "
            f"structures {self.structure_hits}h/{self.structure_misses}m, "
            f"candidates {self.candidate_hits}h/{self.candidate_misses}m"
        )


class EvaluationCache:
    """Content-addressed memo of access structures and query costs.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of entries kept *per kind*.  When the
        bound is reached the oldest-inserted entries are evicted (FIFO — the
        advisor's access pattern is build-once/reuse-many, so recency tracking
        buys nothing over insertion order).  ``None`` (default) means
        unbounded.  Structure entries are a few hundred bytes each; candidate
        entries retain the whole evaluation *including the per-fragment
        allocation arrays* (roughly 16 bytes per fragment), so a cache that
        outlives many large sweeps should set a bound — e.g. ``max_entries``
        of a few thousand keeps the candidate store in the tens of MB for
        10k-fragment layouts.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive when set, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._structures: Dict[Tuple[str, ...], Any] = {}
        self._candidates: Dict[Tuple[str, ...], Any] = {}

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def _structure_key(layout, query, bitmap_scheme) -> Tuple[str, ...]:
        # Keyed on the weight-independent query signature: a reweighted mix
        # reuses every structure (weights only enter the QueryCost records,
        # which the candidate-level entries cover).
        return (
            layout_signature(layout),
            query_structure_signature(query),
            object_signature(bitmap_scheme),
        )

    @staticmethod
    def _structure_batch_key(layout, matrix) -> Tuple[str, ...]:
        # The matrix signature is weight-independent (queries' structure plus
        # bitmap scheme plus schema), mirroring the per-query structure keys:
        # reweighted mixes reuse every cached batch.
        return ("batch", layout_signature(layout), matrix.signature)

    @staticmethod
    def workload_signature(workload) -> str:
        """Content fingerprint of a query mix (queries plus normalized shares)."""
        state = getattr(workload, "__dict__", None)
        if state is not None:
            # Own memo slot — never share "_engine_signature" with
            # object_signature, which computes a different digest.
            cached = state.get("_engine_workload_signature")
            if cached is not None:
                return cached
        parts = []
        for query, share in workload.weighted_items():
            parts.append(object_signature(query))
            parts.append(repr(float(share)))
        signature = stable_digest("QueryMix", *parts)
        if state is not None:
            state["_engine_workload_signature"] = signature
        return signature

    @classmethod
    def candidate_key(cls, context, spec) -> Tuple[str, ...]:
        """Key of one whole candidate evaluation under an engine context.

        Covers every input the evaluation reads: schema, fact table, spec,
        workload, system, bitmap scheme and the two config knobs that change
        the result (the materialization bound and the allocation skew
        threshold).
        """
        return (
            object_signature(context.schema),
            context.fact_name,
            spec.label,
            cls.workload_signature(context.workload),
            object_signature(context.system),
            object_signature(context.bitmap_scheme),
            str(context.config.max_fragments),
            repr(float(context.config.allocation_skew_cv)),
        )

    # -- lookup/insert ----------------------------------------------------------

    def _memoized_structure(self, key, compute):
        """Shared lookup/insert/eviction body of the two structure stores."""
        store = self._structures
        value = store.get(key, _MISSING)
        stats = self.stats
        if value is not _MISSING:
            stats.structure_hits += 1
            return value
        stats.structure_misses += 1
        value = compute()
        if self.max_entries is not None and len(store) >= self.max_entries:
            store.pop(next(iter(store)))
        store[key] = value
        return value

    def access_structure(self, layout, query, bitmap_scheme, compute):
        """Cached prefetch-independent access structure (see module docstring)."""
        return self._memoized_structure(
            self._structure_key(layout, query, bitmap_scheme), compute
        )

    def access_structure_batch(self, layout, matrix, compute):
        """Cached class-axis structure batch of one layout.

        The columnar counterpart of :meth:`access_structure`: one entry covers
        *every* query class of the compiled
        :class:`~repro.workload.ClassMatrix`, keyed on (layout, matrix)
        content signatures and stored alongside the scalar structure entries
        (same store, same stats counters, same worker→parent bulk transfer).
        """
        return self._memoized_structure(
            self._structure_batch_key(layout, matrix), compute
        )

    def candidate(self, context, spec, compute):
        """Cached whole-candidate evaluation under ``context``."""
        value = self.get_candidate(context, spec)
        if value is not None:
            return value
        value = compute()
        self.put_candidate(context, spec, value)
        return value

    def get_candidate(self, context, spec):
        """Probe for a whole-candidate evaluation; ``None`` on miss.

        The probe is counted (hit or miss).  The parallel executor uses this
        to answer warm sweeps from the cache and dispatch only the misses to
        the worker pool.
        """
        value = self._candidates.get(self.candidate_key(context, spec), _MISSING)
        if value is _MISSING:
            self.stats.candidate_misses += 1
            return None
        self.stats.candidate_hits += 1
        return value

    def put_candidate(self, context, spec, candidate) -> None:
        """Insert a candidate evaluated elsewhere (e.g. by a pool worker).

        Not a probe — no counter moves; the miss was already counted by the
        ``get_candidate`` that preceded the computation.
        """
        store = self._candidates
        key = self.candidate_key(context, spec)
        if (
            self.max_entries is not None
            and key not in store
            and len(store) >= self.max_entries
        ):
            store.pop(next(iter(store)))
        store[key] = candidate

    # -- bulk transfer (worker -> parent) ---------------------------------------

    def structure_items(self):
        """Iterate the raw ``(key, structure)`` entries (for bulk transfer)."""
        return self._structures.items()

    def merge_structures(self, items) -> None:
        """Insert structure entries computed elsewhere (e.g. by pool workers).

        Not probes — no counters move; the workers already accounted for the
        computations in their own stats.
        """
        store = self._structures
        for key, value in items:
            if (
                self.max_entries is not None
                and key not in store
                and len(store) >= self.max_entries
            ):
                store.pop(next(iter(store)))
            store[key] = value

    # -- maintenance ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._structures) + len(self._candidates)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._structures.clear()
        self._candidates.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are preserved)."""
        self.stats = CacheStats()
