"""Enumeration of the fragmentation candidate space.

WARLOCK's prediction layer generates every *point* fragmentation: for each
dimension it may either skip the dimension or pick exactly one of its hierarchy
levels as the fragmentation attribute.  The candidate space therefore has
``prod_d (levels_d + 1) - 1`` non-empty members (plus the unfragmented
baseline), which stays small even for rich schemas and is subsequently pruned
by the exclusion thresholds of :mod:`repro.core.thresholds`.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Optional

from repro.errors import FragmentationError
from repro.schema import FactTable, StarSchema
from repro.fragmentation.spec import FragmentationAttribute, FragmentationSpec

__all__ = ["enumerate_point_fragmentations", "count_point_fragmentations"]


def _axis_choices(
    schema: StarSchema, fact: FactTable
) -> List[List[Optional[FragmentationAttribute]]]:
    """Per-dimension choices: ``None`` (skip) or one attribute per level."""
    choices: List[List[Optional[FragmentationAttribute]]] = []
    for dimension_name in fact.dimension_names:
        dimension = schema.dimension(dimension_name)
        axis: List[Optional[FragmentationAttribute]] = [None]
        axis.extend(
            FragmentationAttribute(dimension=dimension.name, level=level.name)
            for level in dimension.levels
        )
        choices.append(axis)
    return choices


def count_point_fragmentations(
    schema: StarSchema,
    fact_table: Optional[str] = None,
    max_dimensions: Optional[int] = None,
    include_baseline: bool = False,
) -> int:
    """Size of the candidate space ``enumerate_point_fragmentations`` would yield."""
    return sum(
        1
        for _ in enumerate_point_fragmentations(
            schema,
            fact_table=fact_table,
            max_dimensions=max_dimensions,
            include_baseline=include_baseline,
        )
    )


def enumerate_point_fragmentations(
    schema: StarSchema,
    fact_table: Optional[str] = None,
    max_dimensions: Optional[int] = None,
    include_baseline: bool = False,
) -> Iterator[FragmentationSpec]:
    """Yield every point fragmentation of the fact table.

    Parameters
    ----------
    schema:
        The star schema.
    fact_table:
        Name of the fact table to fragment; the primary fact table when omitted.
    max_dimensions:
        Upper bound on the fragmentation dimensionality (``None`` = no bound).
    include_baseline:
        Whether to also yield the unfragmented baseline spec.

    Yields
    ------
    FragmentationSpec
        Candidates in a deterministic order (dimension declaration order,
        coarser levels before finer levels, lower dimensionality first is *not*
        guaranteed — ranking happens later).
    """
    if max_dimensions is not None and max_dimensions < 0:
        raise FragmentationError(
            f"max_dimensions must be non-negative, got {max_dimensions}"
        )
    fact = schema.fact_table(fact_table)
    choices = _axis_choices(schema, fact)

    if include_baseline:
        yield FragmentationSpec.none()

    for combination in product(*choices):
        attributes = tuple(attr for attr in combination if attr is not None)
        if not attributes:
            continue
        if max_dimensions is not None and len(attributes) > max_dimensions:
            continue
        yield FragmentationSpec(attributes)
