"""Multi-dimensional hierarchical fragmentation (MDHF), §2 of the paper.

A fragmentation is defined by selecting a set of *fragmentation attributes*
from the dimensional attributes, at most one per dimension.  All fact-table
rows corresponding to a single value combination of the fragmentation
attributes form one fragment.  One-dimensional fragmentations are the special
case of a single fragmentation attribute.  Bitmap fragmentation exactly follows
the fact-table fragmentation.
"""

from repro.fragmentation.spec import FragmentationAttribute, FragmentationSpec
from repro.fragmentation.enumeration import (
    count_point_fragmentations,
    enumerate_point_fragmentations,
)
from repro.fragmentation.layout import (
    FragmentationLayout,
    build_layout,
    dimension_row_shares,
)

__all__ = [
    "FragmentationAttribute",
    "FragmentationSpec",
    "enumerate_point_fragmentations",
    "count_point_fragmentations",
    "FragmentationLayout",
    "build_layout",
    "dimension_row_shares",
]
