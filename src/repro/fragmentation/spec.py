"""Fragmentation specifications.

A :class:`FragmentationSpec` names the dimension attributes (at most one level
per dimension) whose value combinations define the horizontal fragments of a
fact table.  Following the paper, the advisor only considers *point*
fragmentations: each fragment corresponds to exactly one value combination
(attribute range size = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Tuple

from repro.errors import FragmentationError
from repro.schema import FactTable, StarSchema

__all__ = ["FragmentationAttribute", "FragmentationSpec"]


@dataclass(frozen=True)
class FragmentationAttribute:
    """One fragmentation attribute: a dimension plus one of its hierarchy levels."""

    dimension: str
    level: str

    def __post_init__(self) -> None:
        if not self.dimension or not str(self.dimension).strip():
            raise FragmentationError("fragmentation attribute needs a dimension name")
        if not self.level or not str(self.level).strip():
            raise FragmentationError(
                f"fragmentation attribute on {self.dimension!r} needs a level name"
            )

    def cardinality(self, schema: StarSchema) -> int:
        """Number of distinct values of the attribute (= fragments along this axis)."""
        return schema.level_cardinality(self.dimension, self.level)

    def describe(self) -> str:
        """Short ``dimension.level`` form."""
        return f"{self.dimension}.{self.level}"


@dataclass(frozen=True)
class FragmentationSpec:
    """A multi-dimensional hierarchical fragmentation specification.

    ``attributes`` holds at most one :class:`FragmentationAttribute` per
    dimension; the empty tuple denotes "no fragmentation" (the whole fact table
    is a single fragment), which serves as the baseline candidate.
    """

    attributes: Tuple[FragmentationAttribute, ...]

    def __init__(self, attributes: Sequence[FragmentationAttribute] = ()) -> None:
        attributes = tuple(attributes)
        dims = [a.dimension for a in attributes]
        if len(set(dims)) != len(dims):
            raise FragmentationError(
                f"a fragmentation may use at most one attribute per dimension, "
                f"got {dims}"
            )
        object.__setattr__(self, "attributes", attributes)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def none(cls) -> "FragmentationSpec":
        """The "no fragmentation" baseline (a single fragment)."""
        return cls(())

    @classmethod
    def of(cls, *attribute_pairs: Tuple[str, str]) -> "FragmentationSpec":
        """Build a spec from ``(dimension, level)`` pairs.

        Example: ``FragmentationSpec.of(("time", "month"), ("product", "group"))``.
        """
        return cls(
            tuple(
                FragmentationAttribute(dimension=dim, level=lvl)
                for dim, lvl in attribute_pairs
            )
        )

    # -- accessors -------------------------------------------------------------

    @property
    def dimensionality(self) -> int:
        """Number of fragmentation dimensions (0 for the unfragmented baseline)."""
        return len(self.attributes)

    @property
    def is_fragmented(self) -> bool:
        """True unless this is the unfragmented baseline."""
        return bool(self.attributes)

    @property
    def is_one_dimensional(self) -> bool:
        """True for the classic one-dimensional special case."""
        return len(self.attributes) == 1

    @property
    def dimensions(self) -> Tuple[str, ...]:
        """Names of the fragmentation dimensions, in spec order."""
        return tuple(a.dimension for a in self.attributes)

    @cached_property
    def axis_structure(self) -> Tuple[str, ...]:
        """The candidate-axis batching key: fragmentation dimensions in order.

        Two specs share an axis structure exactly when they fragment the same
        dimensions in the same order (their *levels* may differ).  Within one
        axis structure, every per-class control-flow decision of the batched
        cost kernels (restricted dimensions, slot residuals) is identical, so
        the engine stacks such candidates into one (candidate × class) numpy
        batch (:mod:`repro.costmodel.batch`).  Memoized like :attr:`label` —
        the engine groups every chunk of every sweep by it.
        """
        return self.dimensions

    def uses_dimension(self, dimension: str) -> bool:
        """True when ``dimension`` is a fragmentation dimension."""
        return any(a.dimension == dimension for a in self.attributes)

    def attribute_for(self, dimension: str) -> Optional[FragmentationAttribute]:
        """The fragmentation attribute on ``dimension``, or ``None``."""
        for attribute in self.attributes:
            if attribute.dimension == dimension:
                return attribute
        return None

    def fragment_count(self, schema: StarSchema) -> int:
        """Number of fragments the spec induces (product of attribute cardinalities)."""
        count = 1
        for attribute in self.attributes:
            count *= attribute.cardinality(schema)
        return count

    def axis_cardinalities(self, schema: StarSchema) -> Tuple[int, ...]:
        """Cardinality of each fragmentation attribute, in spec order."""
        return tuple(attribute.cardinality(schema) for attribute in self.attributes)

    # -- validation --------------------------------------------------------------

    def validate(self, schema: StarSchema, fact_table: Optional[FactTable] = None) -> None:
        """Check the spec against ``schema`` (and optionally a fact table).

        Raises
        ------
        FragmentationError
            When an attribute references an unknown dimension or level, or a
            dimension the fact table does not reference.
        """
        fact = fact_table if fact_table is not None else schema.fact_table()
        for attribute in self.attributes:
            if not schema.has_dimension(attribute.dimension):
                raise FragmentationError(
                    f"fragmentation references unknown dimension "
                    f"{attribute.dimension!r}"
                )
            dimension = schema.dimension(attribute.dimension)
            if not dimension.has_level(attribute.level):
                raise FragmentationError(
                    f"fragmentation references unknown level "
                    f"{attribute.dimension}.{attribute.level}"
                )
            if attribute.dimension not in fact.dimension_names:
                raise FragmentationError(
                    f"fragmentation dimension {attribute.dimension!r} is not "
                    f"referenced by fact table {fact.name!r}"
                )

    # -- presentation -------------------------------------------------------------

    @cached_property
    def label(self) -> str:
        """Stable human-readable identifier, e.g. ``time.month x product.group``.

        Memoized: the engine stamps the label onto every (candidate × query
        class) work unit and cache key, so one spec's label is read thousands
        of times per sweep.
        """
        if not self.attributes:
            return "(unfragmented)"
        return " x ".join(a.describe() for a in self.attributes)

    def describe(self, schema: Optional[StarSchema] = None) -> str:
        """Label optionally enriched with the induced fragment count."""
        if schema is None:
            return self.label
        return f"{self.label} [{self.fragment_count(schema):,} fragments]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label
