"""Fragmentation layouts: per-fragment row counts and page counts.

A :class:`FragmentationLayout` materializes a fragmentation specification for a
concrete fact table: it derives how many rows and database pages every fragment
holds, taking the Zipf-like data skew of the dimensions into account.  Layouts
are the common substrate of the cost model (fragments/pages hit by a query),
the allocation schemes (fragment sizes drive the greedy placement) and the
analysis layer (database statistics, fragment size distributions).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import cached_property
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import FragmentationError
from repro.schema import Dimension, FactTable, StarSchema
from repro.skew import coefficient_of_variation
from repro.fragmentation.spec import FragmentationSpec

__all__ = ["dimension_row_shares", "build_layout", "FragmentationLayout"]

#: Safety bound on materialized fragment arrays.  Candidates above this are
#: normally excluded long before a layout is built (see repro.core.thresholds);
#: the guard protects interactive misuse.
DEFAULT_MAX_FRAGMENTS = 2_000_000


def dimension_row_shares(dimension: Dimension, level: str) -> np.ndarray:
    """Row share of each value of ``dimension.level``.

    The schema model attaches Zipf-like skew to the *bottom* level of a
    dimension.  Shares at a coarser level are obtained by aggregating the
    ranked bottom-level probabilities over contiguous, (near-)equally sized
    blocks of descendants — each coarse value has ``card(bottom)/card(level)``
    children on average, and hierarchical containment maps every bottom value
    to exactly one ancestor.

    Returns
    -------
    numpy.ndarray
        Vector of length ``card(level)`` summing to 1.0.
    """
    level_obj = dimension.level(level)
    bottom = dimension.bottom_level
    if not dimension.skew.is_skewed:
        return np.full(level_obj.cardinality, 1.0 / level_obj.cardinality)

    bottom_probs = dimension.skew.distribution(bottom.cardinality).probabilities()
    if level_obj.cardinality == bottom.cardinality:
        return bottom_probs

    # Split the ranked bottom values into card(level) contiguous blocks whose
    # sizes differ by at most one, then sum each block.
    boundaries = np.linspace(0, bottom.cardinality, level_obj.cardinality + 1)
    boundaries = np.round(boundaries).astype(int)
    cumulative = np.concatenate(([0.0], np.cumsum(bottom_probs)))
    shares = cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]
    # Guard against tiny negative values from floating point subtraction.
    shares = np.clip(shares, 0.0, None)
    total = shares.sum()
    if total <= 0:
        raise FragmentationError(
            f"degenerate share vector for {dimension.name}.{level}"
        )
    return shares / total


def build_layout(
    schema: StarSchema,
    spec: FragmentationSpec,
    fact_table: Optional[str] = None,
    page_size_bytes: int = 8192,
    max_fragments: int = DEFAULT_MAX_FRAGMENTS,
) -> "FragmentationLayout":
    """Materialize ``spec`` for a fact table of ``schema``.

    Parameters
    ----------
    schema, spec:
        Schema and fragmentation specification.
    fact_table:
        Fact table name (primary fact table when omitted).
    page_size_bytes:
        Database page size used to convert rows to pages.
    max_fragments:
        Guard against materializing absurdly fine fragmentations.

    Raises
    ------
    FragmentationError
        When the spec is invalid for the schema or induces more than
        ``max_fragments`` fragments.
    """
    fact = schema.fact_table(fact_table)
    spec.validate(schema, fact)
    fragment_count = spec.fragment_count(schema)
    if fragment_count > max_fragments:
        raise FragmentationError(
            f"fragmentation {spec.label} induces {fragment_count:,} fragments, "
            f"exceeding the materialization limit of {max_fragments:,}"
        )
    return FragmentationLayout(
        schema=schema,
        fact=fact,
        spec=spec,
        page_size_bytes=page_size_bytes,
    )


@dataclass(frozen=True)
class FragmentationLayout:
    """A fragmentation spec bound to a fact table, with per-fragment sizes."""

    schema: StarSchema
    fact: FactTable
    spec: FragmentationSpec
    page_size_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.page_size_bytes <= 0:
            raise FragmentationError(
                f"page_size_bytes must be positive, got {self.page_size_bytes}"
            )

    # -- pickling ---------------------------------------------------------------
    #
    # Only the defining fields travel across process boundaries; the lazily
    # cached per-fragment arrays (cached_property values in __dict__) are
    # recomputed deterministically on demand.  This keeps the evaluation
    # engine's worker results small: a layout with 100k fragments would
    # otherwise ship megabytes of derivable arrays per candidate.

    def __getstate__(self):
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- axis geometry ---------------------------------------------------------

    @cached_property
    def axis_dimensions(self) -> Tuple[str, ...]:
        """Fragmentation dimensions in spec order."""
        return self.spec.dimensions

    @cached_property
    def axis_cardinalities(self) -> Tuple[int, ...]:
        """Number of fragment values along each fragmentation axis."""
        return self.spec.axis_cardinalities(self.schema)

    @cached_property
    def fragment_count(self) -> int:
        """Total number of fragments."""
        return self.spec.fragment_count(self.schema)

    @cached_property
    def axis_shares(self) -> Tuple[np.ndarray, ...]:
        """Row-share vector along each fragmentation axis (skew-aware)."""
        shares = []
        for attribute in self.spec.attributes:
            dimension = self.schema.dimension(attribute.dimension)
            shares.append(dimension_row_shares(dimension, attribute.level))
        return tuple(shares)

    # -- fragment sizes ----------------------------------------------------------

    @cached_property
    def fragment_rows(self) -> np.ndarray:
        """Expected row count of every fragment (flat, C-order over the axes)."""
        if not self.spec.is_fragmented:
            return np.array([float(self.fact.row_count)])
        shares = self.axis_shares[0]
        for axis in self.axis_shares[1:]:
            shares = np.multiply.outer(shares, axis)
        return shares.reshape(-1) * float(self.fact.row_count)

    @cached_property
    def rows_per_page(self) -> int:
        """Fact rows per database page (blocking factor)."""
        return self.fact.rows_per_page(self.page_size_bytes)

    @cached_property
    def fragment_fact_pages(self) -> np.ndarray:
        """Fact-table pages of every fragment (``ceil`` of rows over blocking factor)."""
        pages = np.ceil(self.fragment_rows / self.rows_per_page)
        return pages.astype(np.int64)

    @cached_property
    def total_fact_pages(self) -> int:
        """Total fact-table pages over all fragments."""
        return int(self.fragment_fact_pages.sum())

    @cached_property
    def average_fragment_pages(self) -> float:
        """Mean fragment size in pages."""
        return float(self.fragment_fact_pages.mean())

    @cached_property
    def max_fragment_pages(self) -> int:
        """Largest fragment size in pages."""
        return int(self.fragment_fact_pages.max())

    @cached_property
    def min_fragment_pages(self) -> int:
        """Smallest fragment size in pages."""
        return int(self.fragment_fact_pages.min())

    @cached_property
    def fragment_size_cv(self) -> float:
        """Coefficient of variation of fragment sizes (0 without skew)."""
        return coefficient_of_variation(self.fragment_rows.tolist())

    @cached_property
    def average_fragment_rows(self) -> float:
        """Mean fragment size in rows."""
        return float(self.fragment_rows.mean())

    # -- indexing ---------------------------------------------------------------

    def flat_index(self, coordinates: Sequence[int]) -> int:
        """Flat fragment index of a value-coordinate tuple (C-order)."""
        coords = tuple(coordinates)
        cards = self.axis_cardinalities
        if len(coords) != len(cards):
            raise FragmentationError(
                f"expected {len(cards)} coordinates, got {len(coords)}"
            )
        flat = 0
        for coordinate, cardinality in zip(coords, cards):
            if not 0 <= coordinate < cardinality:
                raise FragmentationError(
                    f"coordinate {coordinate} out of range [0, {cardinality})"
                )
            flat = flat * cardinality + coordinate
        return flat

    def coordinates(self, flat_index: int) -> Tuple[int, ...]:
        """Value-coordinate tuple of a flat fragment index."""
        if not 0 <= flat_index < self.fragment_count:
            raise FragmentationError(
                f"fragment index {flat_index} out of range "
                f"[0, {self.fragment_count})"
            )
        coords = []
        remainder = flat_index
        for cardinality in reversed(self.axis_cardinalities):
            coords.append(remainder % cardinality)
            remainder //= cardinality
        return tuple(reversed(coords))

    def axis_index(self, dimension: str) -> int:
        """Position of ``dimension`` among the fragmentation axes."""
        for index, name in enumerate(self.axis_dimensions):
            if name == dimension:
                return index
        raise FragmentationError(
            f"{dimension!r} is not a fragmentation dimension of {self.spec.label}"
        )

    # -- presentation -------------------------------------------------------------

    def describe(self) -> str:
        """Database-statistic style summary (fragments, pages, sizes)."""
        return (
            f"{self.spec.label}: {self.fragment_count:,} fragments, "
            f"{self.total_fact_pages:,} fact pages, avg fragment "
            f"{self.average_fragment_pages:,.1f} pages "
            f"(min {self.min_fragment_pages:,}, max {self.max_fragment_pages:,}), "
            f"size CV {self.fragment_size_cv:.3f}"
        )
