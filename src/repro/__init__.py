"""WARLOCK reproduction: a data allocation advisor for parallel data warehouses.

The package reproduces the system demonstrated in

    T. Stöhr, E. Rahm: "WARLOCK: A Data Allocation Tool for Parallel
    Warehouses", Proc. 27th VLDB Conference, Roma, Italy, 2001.

Quickstart::

    from repro import AdvisorSession, SystemParameters, apb1_schema, apb1_query_mix

    session = AdvisorSession(
        apb1_schema(scale=0.1), apb1_query_mix(), SystemParameters(num_disks=64)
    )
    result = session.recommend()
    print(result.recommendation.describe())

    # Incremental what-if edits share the session's evaluation cache:
    print(session.with_delta(disks=32).recommend().recommendation.describe())

(:class:`Warlock` remains as the classic one-shot entry point, now a thin
wrapper over a session.)
"""

from repro.errors import (
    AdvisorError,
    AllocationError,
    BitmapError,
    CostModelError,
    EvaluationCancelled,
    FragmentationError,
    ReportError,
    SchemaError,
    SimulationError,
    StorageError,
    WarlockError,
    WorkloadError,
)
from repro.schema import Dimension, FactTable, Level, Measure, StarSchema, validate_schema
from repro.skew import SkewSpec, ZipfDistribution
from repro.storage import (
    Architecture,
    DiskParameters,
    PrefetchPolicy,
    PrefetchSetting,
    SystemParameters,
)
from repro.workload import DimensionRestriction, QueryClass, QueryMix
from repro.fragmentation import (
    FragmentationAttribute,
    FragmentationLayout,
    FragmentationSpec,
    build_layout,
    count_point_fragmentations,
    enumerate_point_fragmentations,
)
from repro.bitmap import BitmapIndex, BitmapScheme, BitmapType, design_bitmap_scheme
from repro.costmodel import IOCostModel, WorkloadEvaluation, resolve_prefetch_setting
from repro.allocation import (
    Allocation,
    choose_allocation,
    greedy_size_allocation,
    round_robin_allocation,
)
from repro.core import (
    AdvisorConfig,
    FragmentationCandidate,
    RankedCandidate,
    Recommendation,
    Warlock,
)
from repro.engine import (
    CacheStore,
    EvaluationCache,
    EvaluationEngine,
    EvaluationPlan,
    recommendation_fingerprint,
)
from repro.analysis import (
    compare_candidates,
    compare_specs,
    disk_access_profile,
    format_allocation_report,
    format_full_report,
    format_query_analysis,
    format_ranking_table,
)
from repro.simulation import DiskSimulator, instantiate_query
from repro.graph import (
    build_affinity_graph,
    build_schema_graph,
    dimension_ranking,
    suggest_fragmentation_dimensions,
)
from repro.tuning import (
    TuningStudy,
    architecture_study,
    bitmap_exclusion_study,
    disk_count_study,
    prefetch_study,
    skew_study,
    workload_weight_study,
)
from repro.io import (
    candidate_to_dict,
    load_config_file,
    parse_config,
    recommendation_to_dict,
    schema_from_dict,
    schema_to_dict,
    system_from_dict,
    system_to_dict,
    workload_from_list,
    workload_to_list,
)
from repro.api import (
    AdvisorSession,
    CancellationToken,
    CompareRequest,
    CompareResult,
    EngineOptions,
    EngineOptionsDeprecationWarning,
    EvaluateSpecRequest,
    EvaluateSpecResult,
    ProgressEvent,
    RecommendRequest,
    RecommendResult,
    SimulateRequest,
    SimulateResult,
    TuneRequest,
    TuneResult,
)
from repro.datasets import (
    apb1_query_mix,
    apb1_schema,
    retail_query_mix,
    retail_schema,
    synthetic_schema,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "WarlockError",
    "SchemaError",
    "WorkloadError",
    "FragmentationError",
    "AllocationError",
    "CostModelError",
    "BitmapError",
    "StorageError",
    "AdvisorError",
    "EvaluationCancelled",
    "SimulationError",
    "ReportError",
    # schema & skew
    "Level",
    "Dimension",
    "Measure",
    "FactTable",
    "StarSchema",
    "validate_schema",
    "SkewSpec",
    "ZipfDistribution",
    # storage
    "DiskParameters",
    "SystemParameters",
    "Architecture",
    "PrefetchPolicy",
    "PrefetchSetting",
    # workload
    "DimensionRestriction",
    "QueryClass",
    "QueryMix",
    # fragmentation
    "FragmentationAttribute",
    "FragmentationSpec",
    "FragmentationLayout",
    "build_layout",
    "enumerate_point_fragmentations",
    "count_point_fragmentations",
    # bitmaps
    "BitmapType",
    "BitmapIndex",
    "BitmapScheme",
    "design_bitmap_scheme",
    # cost model
    "IOCostModel",
    "WorkloadEvaluation",
    "resolve_prefetch_setting",
    # allocation
    "Allocation",
    "round_robin_allocation",
    "greedy_size_allocation",
    "choose_allocation",
    # advisor core
    "AdvisorConfig",
    "Warlock",
    "Recommendation",
    "FragmentationCandidate",
    "RankedCandidate",
    # evaluation engine
    "CacheStore",
    "EvaluationCache",
    "EvaluationEngine",
    "EvaluationPlan",
    "recommendation_fingerprint",
    # api: sessions, options, requests, progress
    "AdvisorSession",
    "EngineOptions",
    "EngineOptionsDeprecationWarning",
    "ProgressEvent",
    "CancellationToken",
    "RecommendRequest",
    "EvaluateSpecRequest",
    "CompareRequest",
    "TuneRequest",
    "SimulateRequest",
    "RecommendResult",
    "EvaluateSpecResult",
    "CompareResult",
    "TuneResult",
    "SimulateResult",
    # analysis
    "format_ranking_table",
    "format_query_analysis",
    "format_allocation_report",
    "format_full_report",
    "compare_candidates",
    "compare_specs",
    "disk_access_profile",
    # simulation
    "DiskSimulator",
    "instantiate_query",
    # graphs
    "build_schema_graph",
    "build_affinity_graph",
    "dimension_ranking",
    "suggest_fragmentation_dimensions",
    # tuning studies
    "TuningStudy",
    "disk_count_study",
    "architecture_study",
    "prefetch_study",
    "bitmap_exclusion_study",
    "skew_study",
    "workload_weight_study",
    # io / serialization
    "schema_to_dict",
    "schema_from_dict",
    "system_to_dict",
    "system_from_dict",
    "workload_to_list",
    "workload_from_list",
    "parse_config",
    "load_config_file",
    "candidate_to_dict",
    "recommendation_to_dict",
    # datasets
    "apb1_schema",
    "apb1_query_mix",
    "retail_schema",
    "retail_query_mix",
    "synthetic_schema",
    "__version__",
]
