"""Analysis and output layer (§3.3 of the paper).

Renders the ranked candidate list, the detailed per-query-class statistics
(database statistic, I/O access statistic, I/O response times and prefetch
suggestion — the content of the paper's Fig. 2), the physical allocation scheme
with its disk occupancy and access distribution, and candidate comparisons for
interactive fine-tuning.
"""

from repro.analysis.stats import (
    DatabaseStatistics,
    QueryClassStatistics,
    build_database_statistics,
    build_query_statistics,
)
from repro.analysis.report import (
    format_allocation_report,
    format_full_report,
    format_query_analysis,
    format_ranking_table,
    format_table,
)
from repro.analysis.profile import DiskAccessProfile, disk_access_profile
from repro.analysis.compare import compare_candidates, compare_specs
from repro.analysis.charts import (
    access_profile_chart,
    bar_chart,
    occupancy_chart,
    tradeoff_chart,
)

__all__ = [
    "DatabaseStatistics",
    "QueryClassStatistics",
    "build_database_statistics",
    "build_query_statistics",
    "format_table",
    "format_ranking_table",
    "format_query_analysis",
    "format_allocation_report",
    "format_full_report",
    "DiskAccessProfile",
    "disk_access_profile",
    "compare_candidates",
    "compare_specs",
    "bar_chart",
    "occupancy_chart",
    "access_profile_chart",
    "tradeoff_chart",
]
