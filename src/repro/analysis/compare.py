"""Candidate comparison.

Interactive fine-tuning ("let WARLOCK compare the results") needs a compact
side-by-side view of several candidates — typically the top of the ranking, or
the same fragmentation evaluated under different system parameters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import format_table
from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError

__all__ = ["compare_candidates"]


def compare_candidates(
    candidates: Sequence[FragmentationCandidate],
    baseline: Optional[FragmentationCandidate] = None,
) -> str:
    """Render a comparison table over ``candidates``.

    When ``baseline`` is given, relative I/O cost and response time columns
    (candidate / baseline) are added, which makes speed-ups over e.g. the
    unfragmented layout or a one-dimensional fragmentation directly visible.
    """
    if not candidates:
        raise ReportError("compare_candidates needs at least one candidate")

    headers = [
        "fragmentation",
        "dims",
        "fragments",
        "I/O cost [ms]",
        "response [ms]",
        "pages/query",
        "bitmap pages",
        "alloc",
        "occ. CV",
    ]
    if baseline is not None:
        headers.extend(["I/O vs base", "resp vs base"])

    rows = []
    for candidate in candidates:
        row = [
            candidate.label,
            f"{candidate.spec.dimensionality}",
            f"{candidate.fragment_count:,}",
            f"{candidate.io_cost_ms:,.0f}",
            f"{candidate.response_time_ms:,.0f}",
            f"{candidate.pages_accessed:,.0f}",
            f"{candidate.bitmap_storage_pages:,}",
            candidate.allocation.scheme,
            f"{candidate.allocation.occupancy_cv:.3f}",
        ]
        if baseline is not None:
            io_ratio = (
                candidate.io_cost_ms / baseline.io_cost_ms
                if baseline.io_cost_ms
                else float("inf")
            )
            rt_ratio = (
                candidate.response_time_ms / baseline.response_time_ms
                if baseline.response_time_ms
                else float("inf")
            )
            row.extend([f"{io_ratio:.2f}x", f"{rt_ratio:.2f}x"])
        rows.append(row)
    return format_table(headers, rows)
