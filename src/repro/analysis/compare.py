"""Candidate comparison.

Interactive fine-tuning ("let WARLOCK compare the results") needs a compact
side-by-side view of several candidates — typically the top of the ranking, or
the same fragmentation evaluated under different system parameters.

:func:`compare_candidates` renders candidates that were already evaluated;
:func:`compare_specs` evaluates a list of fragmentation specs through the
evaluation engine first (sharing its cache, so specs the advisor or a tuning
study already evaluated are rendered without recomputation) and then renders
the comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import format_table
from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError

__all__ = ["compare_candidates", "compare_specs"]


def compare_candidates(
    candidates: Sequence[FragmentationCandidate],
    baseline: Optional[FragmentationCandidate] = None,
) -> str:
    """Render a comparison table over ``candidates``.

    When ``baseline`` is given, relative I/O cost and response time columns
    (candidate / baseline) are added, which makes speed-ups over e.g. the
    unfragmented layout or a one-dimensional fragmentation directly visible.
    """
    if not candidates:
        raise ReportError("compare_candidates needs at least one candidate")

    headers = [
        "fragmentation",
        "dims",
        "fragments",
        "I/O cost [ms]",
        "response [ms]",
        "pages/query",
        "bitmap pages",
        "alloc",
        "occ. CV",
    ]
    if baseline is not None:
        headers.extend(["I/O vs base", "resp vs base"])

    rows = []
    for candidate in candidates:
        row = [
            candidate.label,
            f"{candidate.spec.dimensionality}",
            f"{candidate.fragment_count:,}",
            f"{candidate.io_cost_ms:,.0f}",
            f"{candidate.response_time_ms:,.0f}",
            f"{candidate.pages_accessed:,.0f}",
            f"{candidate.bitmap_storage_pages:,}",
            candidate.allocation.scheme,
            f"{candidate.allocation.occupancy_cv:.3f}",
        ]
        if baseline is not None:
            io_ratio = (
                candidate.io_cost_ms / baseline.io_cost_ms
                if baseline.io_cost_ms
                else float("inf")
            )
            rt_ratio = (
                candidate.response_time_ms / baseline.response_time_ms
                if baseline.response_time_ms
                else float("inf")
            )
            row.extend([f"{io_ratio:.2f}x", f"{rt_ratio:.2f}x"])
        rows.append(row)
    return format_table(headers, rows)


def compare_specs(
    schema,
    workload,
    system,
    specs: Sequence,
    baseline_spec=None,
    config=None,
    fact_table=None,
    jobs=None,
    cache=None,
    vectorize=None,
    cache_dir=None,
    options=None,
    on_progress=None,
    cancel=None,
) -> str:
    """Evaluate ``specs`` through the engine and render the comparison table.

    Parameters
    ----------
    schema, workload, system, config:
        Advisor inputs (see :class:`repro.core.Warlock`).
    specs:
        Fragmentation specs to evaluate and compare.
    baseline_spec:
        Optional spec evaluated as the ratio baseline (e.g. the unfragmented
        layout); it is appended to the comparison as its first row.
    fact_table:
        Fact table the specs fragment (the schema's primary fact table when
        omitted) — pass the same name the advisor was built with so cached
        evaluations are reused.
    options:
        Execution options (:class:`repro.api.EngineOptions`).  The legacy
        ``jobs=`` / ``vectorize=`` / ``cache_dir=`` kwargs remain as
        deprecation shims.
    cache:
        Evaluation cache to share with previous advisor/tuning work; a cache
        that already holds these evaluations makes this a pure rendering call.
    on_progress, cancel:
        Chunk-boundary progress callback and cooperative cancel signal (see
        :mod:`repro.api.progress`).
    """
    from repro.api.options import UNSET, resolve_engine_options
    from repro.engine import EvaluationEngine

    if not specs:
        raise ReportError("compare_specs needs at least one spec")
    # Resolved here (not delegated to the engine constructor) so the shim
    # warnings name compare_specs and point at *its* caller.
    options, shared_cache = resolve_engine_options(
        options,
        owner="compare_specs",
        jobs=UNSET if jobs is None else jobs,
        vectorize=UNSET if vectorize is None else vectorize,
        cache=UNSET if cache is None else cache,
        cache_dir=UNSET if cache_dir is None else cache_dir,
    )
    engine = EvaluationEngine(
        schema,
        workload,
        system,
        config,
        fact_table=fact_table,
        cache=shared_cache,
        options=options,
    )
    sweep = list(specs) if baseline_spec is None else [baseline_spec, *specs]
    candidates = engine.evaluate_specs(sweep, on_progress=on_progress, cancel=cancel)
    if baseline_spec is None:
        return compare_candidates(candidates)
    return compare_candidates(candidates, baseline=candidates[0])
