"""Candidate comparison.

Interactive fine-tuning ("let WARLOCK compare the results") needs a compact
side-by-side view of several candidates — typically the top of the ranking, or
the same fragmentation evaluated under different system parameters.

:func:`compare_candidates` renders candidates that were already evaluated;
:func:`compare_specs` evaluates a list of fragmentation specs through the
evaluation engine first (sharing its cache, so specs the advisor or a tuning
study already evaluated are rendered without recomputation) and then renders
the comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError

__all__ = ["compare_candidates", "compare_specs"]


def compare_candidates(
    candidates: Sequence[FragmentationCandidate],
    baseline: Optional[FragmentationCandidate] = None,
) -> str:
    """Render a comparison table over ``candidates``.

    When ``baseline`` is given, relative I/O cost and response time columns
    (candidate / baseline) are added, which makes speed-ups over e.g. the
    unfragmented layout or a one-dimensional fragmentation directly visible.
    """
    if not candidates:
        raise ReportError("compare_candidates needs at least one candidate")

    headers = [
        "fragmentation",
        "dims",
        "fragments",
        "I/O cost [ms]",
        "response [ms]",
        "pages/query",
        "bitmap pages",
        "alloc",
        "occ. CV",
    ]
    if baseline is not None:
        headers.extend(["I/O vs base", "resp vs base"])

    rows = []
    for candidate in candidates:
        row = [
            candidate.label,
            f"{candidate.spec.dimensionality}",
            f"{candidate.fragment_count:,}",
            f"{candidate.io_cost_ms:,.0f}",
            f"{candidate.response_time_ms:,.0f}",
            f"{candidate.pages_accessed:,.0f}",
            f"{candidate.bitmap_storage_pages:,}",
            candidate.allocation.scheme,
            f"{candidate.allocation.occupancy_cv:.3f}",
        ]
        if baseline is not None:
            io_ratio = (
                candidate.io_cost_ms / baseline.io_cost_ms
                if baseline.io_cost_ms
                else float("inf")
            )
            rt_ratio = (
                candidate.response_time_ms / baseline.response_time_ms
                if baseline.response_time_ms
                else float("inf")
            )
            row.extend([f"{io_ratio:.2f}x", f"{rt_ratio:.2f}x"])
        rows.append(row)
    return format_table(headers, rows)


def compare_specs(
    schema,
    workload,
    system,
    specs: Sequence,
    baseline_spec=None,
    config=None,
    fact_table=None,
    jobs: Union[int, str] = 1,
    cache=None,
    vectorize: bool = True,
    cache_dir: Optional[str] = None,
) -> str:
    """Evaluate ``specs`` through the engine and render the comparison table.

    Parameters
    ----------
    schema, workload, system, config:
        Advisor inputs (see :class:`repro.core.Warlock`).
    specs:
        Fragmentation specs to evaluate and compare.
    baseline_spec:
        Optional spec evaluated as the ratio baseline (e.g. the unfragmented
        layout); it is appended to the comparison as its first row.
    fact_table:
        Fact table the specs fragment (the schema's primary fact table when
        omitted) — pass the same name the advisor was built with so cached
        evaluations are reused.
    jobs:
        Worker processes for the sweep (1 = serial, "auto" = adaptive).
    cache:
        Evaluation cache to share with previous advisor/tuning work; a cache
        that already holds these evaluations makes this a pure rendering call.
    vectorize:
        Evaluate the per-class cost sweep vectorized over the class axis
        (default) or with the scalar reference path; results are identical.
    cache_dir:
        Directory of a persistent cache store
        (:class:`repro.engine.CacheStore`): the comparison warm-starts from
        evaluations earlier processes spilled there (e.g. the advisor run
        that ranked these specs) and spills its own back.
    """
    from repro.engine import EvaluationEngine

    if not specs:
        raise ReportError("compare_specs needs at least one spec")
    engine = EvaluationEngine(
        schema,
        workload,
        system,
        config,
        fact_table=fact_table,
        jobs=jobs,
        cache=cache,
        vectorize=vectorize,
        cache_dir=cache_dir,
    )
    sweep = list(specs) if baseline_spec is None else [baseline_spec, *specs]
    candidates = engine.evaluate_specs(sweep)
    if baseline_spec is None:
        return compare_candidates(candidates)
    return compare_candidates(candidates, baseline=candidates[0])
