"""Statistics objects rendered by the analysis layer.

Two statistic families appear in the paper's Fig. 2:

* the **database statistic** of a fragmentation: number of pages, number of
  fragments and fragment sizes (plus, in this reproduction, the bitmap space),
* the **I/O access statistic** per query class: accessed fragments and pages,
  number of I/Os, I/O response time and the prefetch granule suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError
from repro.workload import QueryMix

__all__ = [
    "DatabaseStatistics",
    "QueryClassStatistics",
    "build_database_statistics",
    "build_query_statistics",
]


@dataclass(frozen=True)
class DatabaseStatistics:
    """Database statistic of one fragmentation candidate."""

    fragmentation: str
    fragment_count: int
    fact_pages: int
    bitmap_pages: int
    avg_fragment_pages: float
    min_fragment_pages: int
    max_fragment_pages: int
    fragment_size_cv: float

    @property
    def total_pages(self) -> int:
        """Fact plus bitmap pages."""
        return self.fact_pages + self.bitmap_pages

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON output."""
        return {
            "fragmentation": self.fragmentation,
            "fragment_count": self.fragment_count,
            "fact_pages": self.fact_pages,
            "bitmap_pages": self.bitmap_pages,
            "total_pages": self.total_pages,
            "avg_fragment_pages": self.avg_fragment_pages,
            "min_fragment_pages": self.min_fragment_pages,
            "max_fragment_pages": self.max_fragment_pages,
            "fragment_size_cv": self.fragment_size_cv,
        }


@dataclass(frozen=True)
class QueryClassStatistics:
    """I/O access statistic of one query class on one candidate."""

    query_name: str
    workload_share: float
    fragments_accessed: float
    fragments_total: int
    fact_pages_accessed: float
    bitmap_pages_accessed: float
    io_requests: float
    io_cost_ms: float
    response_time_ms: float
    disks_used: int
    sequential_access: bool

    @property
    def pages_accessed(self) -> float:
        """Fact plus bitmap pages accessed."""
        return self.fact_pages_accessed + self.bitmap_pages_accessed

    @property
    def fragment_hit_ratio(self) -> float:
        """Fraction of all fragments the class touches."""
        if self.fragments_total == 0:
            return 0.0
        return self.fragments_accessed / self.fragments_total

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON output."""
        return {
            "query": self.query_name,
            "share": self.workload_share,
            "fragments_accessed": self.fragments_accessed,
            "fragment_hit_ratio": self.fragment_hit_ratio,
            "fact_pages_accessed": self.fact_pages_accessed,
            "bitmap_pages_accessed": self.bitmap_pages_accessed,
            "io_requests": self.io_requests,
            "io_cost_ms": self.io_cost_ms,
            "response_time_ms": self.response_time_ms,
            "disks_used": self.disks_used,
            "sequential": float(self.sequential_access),
        }


def build_database_statistics(candidate: FragmentationCandidate) -> DatabaseStatistics:
    """Derive the database statistic of a candidate."""
    layout = candidate.layout
    return DatabaseStatistics(
        fragmentation=candidate.label,
        fragment_count=layout.fragment_count,
        fact_pages=layout.total_fact_pages,
        bitmap_pages=candidate.bitmap_storage_pages,
        avg_fragment_pages=layout.average_fragment_pages,
        min_fragment_pages=layout.min_fragment_pages,
        max_fragment_pages=layout.max_fragment_pages,
        fragment_size_cv=layout.fragment_size_cv,
    )


def build_query_statistics(
    candidate: FragmentationCandidate, workload: QueryMix
) -> List[QueryClassStatistics]:
    """Derive the per-query-class I/O access statistics of a candidate."""
    statistics = []
    shares = workload.shares()
    for cost in candidate.evaluation.per_class:
        if cost.query_name not in shares:
            raise ReportError(
                f"evaluation contains query class {cost.query_name!r} that is "
                f"not part of the supplied workload"
            )
        profile = cost.profile
        statistics.append(
            QueryClassStatistics(
                query_name=cost.query_name,
                workload_share=shares[cost.query_name],
                fragments_accessed=profile.fragments_accessed,
                fragments_total=profile.fragments_total,
                fact_pages_accessed=profile.fact_pages_accessed,
                bitmap_pages_accessed=profile.bitmap_pages_accessed,
                io_requests=profile.total_io_requests,
                io_cost_ms=cost.io_cost_ms,
                response_time_ms=cost.response_time_ms,
                disks_used=cost.disks_used,
                sequential_access=profile.sequential_fact_access,
            )
        )
    return statistics
