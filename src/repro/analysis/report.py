"""Plain-text report rendering.

The Java tool visualized its results in a GUI; this reproduction renders the
same content as monospaced text tables: the ranked candidate list, the detailed
fragmentation / query analysis (Fig. 2), the physical allocation scheme and a
combined full report.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.analysis.stats import build_database_statistics, build_query_statistics
from repro.core.advisor import Recommendation
from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError
from repro.workload import QueryMix

__all__ = [
    "format_table",
    "format_ranking_table",
    "format_query_analysis",
    "format_allocation_report",
    "format_full_report",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a simple monospaced table with right-padded columns."""
    header_list = [str(h) for h in headers]
    row_list = [[str(cell) for cell in row] for row in rows]
    for row in row_list:
        if len(row) != len(header_list):
            raise ReportError(
                f"table row has {len(row)} cells but {len(header_list)} headers"
            )
    widths = [len(h) for h in header_list]
    for row in row_list:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_list, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in row_list:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_ranking_table(recommendation: Recommendation) -> str:
    """The ranked list of fragmentation candidates (the advisor's headline output)."""
    headers = [
        "rank",
        "fragmentation",
        "fragments",
        "I/O cost [ms]",
        "response [ms]",
        "I/O-cost rank",
        "allocation",
    ]
    rows = []
    for ranked in recommendation.ranked:
        candidate = ranked.candidate
        rows.append(
            [
                f"{ranked.final_rank}",
                candidate.label,
                f"{candidate.fragment_count:,}",
                f"{candidate.io_cost_ms:,.0f}",
                f"{candidate.response_time_ms:,.0f}",
                f"{ranked.io_rank}",
                candidate.allocation.scheme,
            ]
        )
    title = (
        f"Top fragmentation candidates for {recommendation.schema.name} "
        f"({recommendation.exclusion_report.surviving_count} evaluated, "
        f"{recommendation.exclusion_report.excluded_count} excluded by thresholds)"
    )
    return f"{title}\n\n{format_table(headers, rows)}"


def format_query_analysis(
    candidate: FragmentationCandidate, workload: QueryMix
) -> str:
    """The detailed fragmentation / query analysis of one candidate (Fig. 2)."""
    database = build_database_statistics(candidate)
    query_stats = build_query_statistics(candidate, workload)

    lines: List[str] = []
    lines.append(f"Fragmentation analysis: {candidate.label}")
    lines.append("")
    lines.append("Database statistic")
    lines.append(
        format_table(
            ["#fragments", "fact pages", "bitmap pages", "avg frag pages",
             "min frag pages", "max frag pages", "size CV"],
            [[
                f"{database.fragment_count:,}",
                f"{database.fact_pages:,}",
                f"{database.bitmap_pages:,}",
                f"{database.avg_fragment_pages:,.1f}",
                f"{database.min_fragment_pages:,}",
                f"{database.max_fragment_pages:,}",
                f"{database.fragment_size_cv:.3f}",
            ]],
        )
    )
    lines.append("")
    lines.append("I/O access statistic and response times per query class")
    lines.append(
        format_table(
            ["query class", "share", "#fragments", "fact pages", "bitmap pages",
             "#I/Os", "I/O cost [ms]", "response [ms]", "disks"],
            [
                [
                    stat.query_name,
                    f"{stat.workload_share:.1%}",
                    f"{stat.fragments_accessed:,.1f}",
                    f"{stat.fact_pages_accessed:,.0f}",
                    f"{stat.bitmap_pages_accessed:,.0f}",
                    f"{stat.io_requests:,.0f}",
                    f"{stat.io_cost_ms:,.1f}",
                    f"{stat.response_time_ms:,.1f}",
                    f"{stat.disks_used}",
                ]
                for stat in query_stats
            ],
        )
    )
    lines.append("")
    lines.append(f"Prefetch granule suggestion: {candidate.prefetch.describe()}")
    lines.append(candidate.bitmap_scheme.describe())
    return "\n".join(lines)


def format_allocation_report(candidate: FragmentationCandidate, top_disks: int = 5) -> str:
    """The physical allocation scheme: occupancy distribution and extremes."""
    allocation = candidate.allocation
    occupancy = allocation.occupancy_pages
    order = np.argsort(-occupancy)
    lines = [f"Physical allocation scheme for {candidate.label}"]
    lines.append(f"  {allocation.describe()}")
    lines.append(f"  fragments per disk: min {int(allocation.fragments_per_disk.min())}, "
                 f"max {int(allocation.fragments_per_disk.max())}")
    most = ", ".join(
        f"disk {int(d)}: {occupancy[d]:,.0f} pages" for d in order[:top_disks]
    )
    least = ", ".join(
        f"disk {int(d)}: {occupancy[d]:,.0f} pages" for d in order[-top_disks:][::-1]
    )
    lines.append(f"  most occupied:  {most}")
    lines.append(f"  least occupied: {least}")
    if not allocation.fits_capacity():
        lines.append(
            "  WARNING: the most occupied disk exceeds the configured disk capacity"
        )
    return "\n".join(lines)


def format_full_report(recommendation: Recommendation, detail_top: int = 1) -> str:
    """The combined report: ranking, detailed analysis and allocation of the top candidates."""
    if detail_top < 0:
        raise ReportError(f"detail_top must be non-negative, got {detail_top}")
    sections = [recommendation.describe(), "", format_ranking_table(recommendation)]
    for ranked in recommendation.ranked[:detail_top]:
        sections.append("")
        sections.append(format_query_analysis(ranked.candidate, recommendation.workload))
        sections.append("")
        sections.append(format_allocation_report(ranked.candidate))
    return "\n".join(sections)
