"""Disk access profiles per query class.

The paper's output layer visualizes "a disk access profile per query class":
how the pages a query class reads are spread over the disks of the allocation.
The profile is obtained by instantiating the class several times (skew-aware)
and averaging the per-disk page counts of the instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError
from repro.simulation import instantiate_query
from repro.skew import coefficient_of_variation
from repro.workload import QueryClass

__all__ = ["DiskAccessProfile", "disk_access_profile"]


@dataclass(frozen=True)
class DiskAccessProfile:
    """Average per-disk pages read by one query class on one candidate."""

    query_name: str
    fragmentation: str
    pages_per_disk: np.ndarray
    samples: int

    @property
    def num_disks(self) -> int:
        """Number of disks in the profile."""
        return int(self.pages_per_disk.size)

    @property
    def disks_touched(self) -> int:
        """Disks from which at least one page is read (on average)."""
        return int(np.count_nonzero(self.pages_per_disk > 1e-9))

    @property
    def total_pages(self) -> float:
        """Total pages read per query (averaged over the samples)."""
        return float(self.pages_per_disk.sum())

    @property
    def access_cv(self) -> float:
        """Coefficient of variation of the per-disk page counts."""
        return coefficient_of_variation(self.pages_per_disk.tolist())

    @property
    def max_over_mean(self) -> float:
        """Hottest disk's load relative to the mean (1.0 = perfectly balanced)."""
        mean = self.pages_per_disk.mean()
        if mean == 0:
            return 1.0
        return float(self.pages_per_disk.max() / mean)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.query_name} on {self.fragmentation}: {self.total_pages:,.0f} "
            f"pages over {self.disks_touched}/{self.num_disks} disks, access CV "
            f"{self.access_cv:.3f}, hottest/mean {self.max_over_mean:.2f}"
        )


def disk_access_profile(
    candidate: FragmentationCandidate,
    query_class: QueryClass,
    samples: int = 20,
    seed: Optional[int] = 0,
    weighted_values: bool = True,
) -> DiskAccessProfile:
    """Compute the disk access profile of ``query_class`` on ``candidate``.

    Parameters
    ----------
    candidate:
        Evaluated fragmentation candidate (provides layout, bitmaps, allocation).
    query_class:
        The query class to profile.
    samples:
        Number of query instances averaged.
    seed:
        Random seed for reproducible profiles.
    weighted_values:
        Draw restriction values proportionally to the data behind them.
    """
    if samples <= 0:
        raise ReportError(f"samples must be positive, got {samples}")
    rng = np.random.default_rng(seed)
    allocation = candidate.allocation
    totals = np.zeros(allocation.num_disks, dtype=np.float64)
    for _ in range(samples):
        instance = instantiate_query(
            candidate.layout,
            query_class,
            candidate.bitmap_scheme,
            rng=rng,
            weighted_values=weighted_values,
        )
        pages = instance.fact_pages + instance.bitmap_pages
        totals += allocation.access_distribution(
            instance.fragment_indices.tolist(), pages.tolist()
        )
    return DiskAccessProfile(
        query_name=query_class.name,
        fragmentation=candidate.label,
        pages_per_disk=totals / samples,
        samples=samples,
    )
