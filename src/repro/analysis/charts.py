"""ASCII bar charts for terminal reports.

The Java GUI visualized disk occupancy, access distributions and candidate
comparisons graphically; the CLI replacement renders the same information as
horizontal ASCII bar charts so that the "visualized allocation scheme" of the
demo survives in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.candidates import FragmentationCandidate
from repro.errors import ReportError

__all__ = ["bar_chart", "occupancy_chart", "access_profile_chart", "tradeoff_chart"]

#: Character used to draw bars.
_BAR = "#"


def bar_chart(
    values: Union[Sequence[float], Dict[str, float]],
    labels: Optional[Sequence[str]] = None,
    width: int = 50,
    value_format: str = "{:,.0f}",
    title: Optional[str] = None,
) -> str:
    """Render a horizontal bar chart.

    Parameters
    ----------
    values:
        The bar values — a sequence, or a mapping from label to value.
    labels:
        Bar labels (ignored when ``values`` is a mapping; generated indices
        when omitted).
    width:
        Width of the longest bar in characters.
    value_format:
        Format string applied to the numeric value printed after each bar.
    title:
        Optional title line.
    """
    if isinstance(values, dict):
        labels = list(values.keys())
        data = [float(v) for v in values.values()]
    else:
        data = [float(v) for v in values]
        if labels is None:
            labels = [str(index) for index in range(len(data))]
        else:
            labels = [str(label) for label in labels]
    if not data:
        raise ReportError("bar_chart needs at least one value")
    if len(labels) != len(data):
        raise ReportError(
            f"bar_chart got {len(labels)} labels for {len(data)} values"
        )
    if width <= 0:
        raise ReportError(f"width must be positive, got {width}")
    if any(value < 0 for value in data):
        raise ReportError("bar_chart only renders non-negative values")

    maximum = max(data)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, data):
        bar_length = int(round(width * value / maximum)) if maximum > 0 else 0
        bar = _BAR * bar_length
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def occupancy_chart(
    candidate: FragmentationCandidate, max_disks: int = 32, width: int = 50
) -> str:
    """Disk occupancy of a candidate's allocation as a bar chart.

    Disks beyond ``max_disks`` are aggregated into min/max summary lines to
    keep the chart readable for large configurations.
    """
    occupancy = candidate.allocation.occupancy_pages
    title = (
        f"Disk occupancy [pages] — {candidate.label} "
        f"({candidate.allocation.scheme}, {occupancy.size} disks)"
    )
    if occupancy.size <= max_disks:
        labels = [f"disk {index}" for index in range(occupancy.size)]
        return bar_chart(occupancy.tolist(), labels, width=width, title=title)
    order = np.argsort(-occupancy)
    top = order[: max_disks // 2]
    bottom = order[-(max_disks - max_disks // 2):]
    chosen = list(top) + list(bottom)
    labels = [f"disk {int(index)}" for index in chosen]
    values = [float(occupancy[int(index)]) for index in chosen]
    chart = bar_chart(values, labels, width=width, title=title)
    return (
        f"{chart}\n(showing the {len(top)} most and {len(bottom)} least occupied of "
        f"{occupancy.size} disks)"
    )


def access_profile_chart(
    pages_per_disk: Sequence[float], query_name: str, width: int = 50, max_disks: int = 32
) -> str:
    """Per-disk access profile of one query class as a bar chart."""
    values = [float(v) for v in pages_per_disk]
    if not values:
        raise ReportError("access_profile_chart needs at least one disk")
    title = f"Disk access profile [pages/query] — {query_name}"
    if len(values) <= max_disks:
        labels = [f"disk {index}" for index in range(len(values))]
        return bar_chart(values, labels, width=width, value_format="{:,.1f}", title=title)
    # Aggregate into max_disks buckets of neighbouring disks.
    buckets = np.array_split(np.asarray(values), max_disks)
    labels = []
    start = 0
    aggregated = []
    for bucket in buckets:
        end = start + len(bucket) - 1
        labels.append(f"disks {start}-{end}")
        aggregated.append(float(np.sum(bucket)))
        start = end + 1
    chart = bar_chart(aggregated, labels, width=width, value_format="{:,.1f}", title=title)
    return f"{chart}\n(neighbouring disks aggregated into {max_disks} buckets)"


def tradeoff_chart(
    candidates: Sequence[FragmentationCandidate], width: int = 50, metric: str = "both"
) -> str:
    """I/O cost and response time of several candidates as paired bar charts."""
    if not candidates:
        raise ReportError("tradeoff_chart needs at least one candidate")
    if metric not in ("both", "io_cost", "response_time"):
        raise ReportError(f"unknown metric {metric!r}")
    sections: List[str] = []
    labels = [candidate.label for candidate in candidates]
    if metric in ("both", "io_cost"):
        sections.append(
            bar_chart(
                [candidate.io_cost_ms for candidate in candidates],
                labels,
                width=width,
                title="I/O cost [ms] per candidate",
            )
        )
    if metric in ("both", "response_time"):
        sections.append(
            bar_chart(
                [candidate.response_time_ms for candidate in candidates],
                labels,
                width=width,
                title="Response time [ms] per candidate",
            )
        )
    return "\n\n".join(sections)
