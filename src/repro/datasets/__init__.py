"""Ready-made schemas and workloads.

The demo uses "various schemas and workloads, including APB-1-based
configurations".  This package provides an APB-1-style configuration, a retail
warehouse configuration and a synthetic generator, each with a matching query
mix, so examples, tests and benchmark harnesses run out of the box.
"""

from repro.datasets.apb1 import apb1_query_mix, apb1_schema
from repro.datasets.retail import retail_query_mix, retail_schema
from repro.datasets.synthetic import synthetic_schema

__all__ = [
    "apb1_schema",
    "apb1_query_mix",
    "retail_schema",
    "retail_query_mix",
    "synthetic_schema",
]
