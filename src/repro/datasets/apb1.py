"""APB-1-style star schema and query mix.

The APB-1 OLAP Council benchmark (Release II, 1998) models a sales analysis
application over four dimensions — product, customer, time and channel — with a
deep product hierarchy and a large, sparse fact table.  The original WARLOCK
demonstration uses APB-1-based configurations; this module provides a
structurally faithful, scalable stand-in:

* the hierarchy shape and level cardinalities follow the published APB-1
  structure (product code 9000 -> class 900 -> group 300 -> family 75 ->
  line 15 -> division 4; 900 stores under 90 retailers; 24 months under
  8 quarters under 2 years; 9 channels),
* the fact-table size defaults to about 24.9 million rows (the density-0.1
  configuration) and can be scaled up or down with ``scale``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SchemaError
from repro.schema import Dimension, FactTable, Level, Measure, StarSchema
from repro.skew import SkewSpec
from repro.workload import DimensionRestriction, QueryClass, QueryMix

__all__ = ["apb1_schema", "apb1_query_mix"]

#: Default fact-table size (rows) for scale 1.0, matching the APB-1
#: density-0.1 configuration of roughly 24.9 million history rows.
APB1_BASE_FACT_ROWS = 24_900_000


def apb1_schema(
    scale: float = 1.0,
    skew: Optional[Dict[str, float]] = None,
    fact_row_size_bytes: int = 64,
) -> StarSchema:
    """Build the APB-1-style star schema.

    Parameters
    ----------
    scale:
        Fact-table scale factor; 1.0 gives ~24.9 M rows.  Dimension
        cardinalities are not scaled (as in APB-1, where density controls the
        fact volume).
    skew:
        Optional mapping from dimension name (``"product"``, ``"customer"``,
        ``"time"``, ``"channel"``) to a Zipf theta applied at the dimension's
        bottom level.
    fact_row_size_bytes:
        Width of a fact row (foreign keys plus the APB-1 measures).
    """
    if scale <= 0:
        raise SchemaError(f"scale must be positive, got {scale}")
    skew = dict(skew or {})
    unknown = set(skew) - {"product", "customer", "time", "channel"}
    if unknown:
        raise SchemaError(f"skew refers to unknown APB-1 dimensions: {sorted(unknown)}")

    def spec_for(name: str) -> SkewSpec:
        return SkewSpec(theta=skew.get(name, 0.0))

    product = Dimension(
        name="product",
        levels=[
            Level("division", 4),
            Level("line", 15),
            Level("family", 75),
            Level("group", 300),
            Level("class", 900),
            Level("code", 9000),
        ],
        skew=spec_for("product"),
        row_size_bytes=96,
    )
    customer = Dimension(
        name="customer",
        levels=[
            Level("retailer", 90),
            Level("store", 900),
        ],
        skew=spec_for("customer"),
        row_size_bytes=80,
    )
    time = Dimension(
        name="time",
        levels=[
            Level("year", 2),
            Level("quarter", 8),
            Level("month", 24),
        ],
        skew=spec_for("time"),
        row_size_bytes=32,
    )
    channel = Dimension(
        name="channel",
        levels=[Level("channel", 9)],
        skew=spec_for("channel"),
        row_size_bytes=32,
    )

    fact_rows = max(1, int(round(APB1_BASE_FACT_ROWS * scale)))
    fact = FactTable(
        name="sales_history",
        row_count=fact_rows,
        row_size_bytes=fact_row_size_bytes,
        dimension_names=("product", "customer", "time", "channel"),
        measures=(
            Measure("units_sold", 8),
            Measure("dollar_sales", 8),
            Measure("cost", 8),
        ),
    )
    return StarSchema(
        name=f"apb1(scale={scale:g})",
        dimensions=(product, customer, time, channel),
        fact_tables=(fact,),
    )


def apb1_query_mix() -> QueryMix:
    """The weighted query-class mix used by the APB-1-style experiments.

    The classes follow the spirit of the APB-1 query set: channel/product/time
    roll-ups at several hierarchy levels, customer reporting, and a couple of
    fine-grained drill-downs, with weights reflecting a reporting-heavy
    workload.
    """
    classes = [
        QueryClass(
            name="Q1-month-group",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "group"),
            ],
            weight=20,
        ),
        QueryClass(
            name="Q2-quarter-retailer",
            restrictions=[
                DimensionRestriction("time", "quarter"),
                DimensionRestriction("customer", "retailer"),
            ],
            weight=15,
        ),
        QueryClass(
            name="Q3-month-class-channel",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "class"),
                DimensionRestriction("channel", "channel"),
            ],
            weight=15,
        ),
        QueryClass(
            name="Q4-month-store",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("customer", "store"),
            ],
            weight=10,
        ),
        QueryClass(
            name="Q5-year-division",
            restrictions=[
                DimensionRestriction("time", "year"),
                DimensionRestriction("product", "division"),
            ],
            weight=10,
        ),
        QueryClass(
            name="Q6-month-code",
            restrictions=[
                DimensionRestriction("time", "month"),
                DimensionRestriction("product", "code"),
            ],
            weight=10,
        ),
        QueryClass(
            name="Q7-channel-rollup",
            restrictions=[DimensionRestriction("channel", "channel")],
            weight=5,
        ),
        QueryClass(
            name="Q8-year-report",
            restrictions=[DimensionRestriction("time", "year")],
            weight=15,
        ),
    ]
    return QueryMix(classes)
