"""Synthetic star schema generator.

Used by the property-based tests and the threshold/ablation benchmarks to
exercise the advisor on schemas of arbitrary shape (number of dimensions,
hierarchy depth, cardinality spread, skew).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.schema import Dimension, FactTable, Level, Measure, StarSchema
from repro.skew import SkewSpec

__all__ = ["synthetic_schema"]


def synthetic_schema(
    num_dimensions: int = 4,
    levels_per_dimension: int = 3,
    bottom_cardinality: int = 1000,
    fact_rows: int = 10_000_000,
    fact_row_size_bytes: int = 64,
    skew_thetas: Optional[Sequence[float]] = None,
    seed: Optional[int] = 7,
    name: str = "synthetic",
) -> StarSchema:
    """Generate a synthetic star schema.

    Each dimension gets ``levels_per_dimension`` levels whose cardinalities
    grow geometrically from a small top level to ``bottom_cardinality`` (with a
    little random jitter so dimensions are not identical).

    Parameters
    ----------
    num_dimensions:
        Number of dimensions referenced by the fact table.
    levels_per_dimension:
        Hierarchy depth of every dimension.
    bottom_cardinality:
        Cardinality of the bottom level of every dimension (before jitter).
    fact_rows / fact_row_size_bytes:
        Fact-table volume.
    skew_thetas:
        Optional per-dimension Zipf thetas (recycled if shorter than
        ``num_dimensions``).
    seed:
        Seed for the jitter; ``None`` disables jitter entirely.
    name:
        Schema name prefix.
    """
    if num_dimensions <= 0:
        raise SchemaError(f"num_dimensions must be positive, got {num_dimensions}")
    if levels_per_dimension <= 0:
        raise SchemaError(
            f"levels_per_dimension must be positive, got {levels_per_dimension}"
        )
    if bottom_cardinality <= 0:
        raise SchemaError(
            f"bottom_cardinality must be positive, got {bottom_cardinality}"
        )

    rng = np.random.default_rng(seed) if seed is not None else None
    dimensions = []
    for dim_index in range(num_dimensions):
        if rng is not None:
            jitter = float(rng.uniform(0.7, 1.3))
        else:
            jitter = 1.0
        bottom = max(2, int(round(bottom_cardinality * jitter)))
        # Geometric progression from a small top level down to `bottom`.
        ratio = bottom ** (1.0 / levels_per_dimension)
        cardinalities = []
        for level_index in range(levels_per_dimension):
            cardinality = max(2, int(round(ratio ** (level_index + 1))))
            if cardinalities and cardinality <= cardinalities[-1]:
                cardinality = cardinalities[-1] + 1
            cardinalities.append(cardinality)
        cardinalities[-1] = max(cardinalities[-1], bottom)
        levels = [
            Level(f"d{dim_index}_l{level_index}", cardinality)
            for level_index, cardinality in enumerate(cardinalities)
        ]
        theta = 0.0
        if skew_thetas:
            theta = float(skew_thetas[dim_index % len(skew_thetas)])
        dimensions.append(
            Dimension(
                name=f"dim{dim_index}",
                levels=levels,
                skew=SkewSpec(theta=theta),
            )
        )

    fact = FactTable(
        name="facts",
        row_count=fact_rows,
        row_size_bytes=fact_row_size_bytes,
        dimension_names=tuple(d.name for d in dimensions),
        measures=(Measure("value", 8),),
    )
    return StarSchema(
        name=f"{name}({num_dimensions}d x {levels_per_dimension}l)",
        dimensions=dimensions,
        fact_tables=(fact,),
    )
