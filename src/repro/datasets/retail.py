"""Retail warehouse schema and query mix.

A second, independent configuration in the spirit of the retail/grocery data
warehouses the paper's introduction motivates: a daily sales fact table over
date, store, item and promotion dimensions, with a skewed item dimension (a
small fraction of the items generates most of the sales).  Used by the
domain-specific example and several benchmarks.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema import Dimension, FactTable, Level, Measure, StarSchema
from repro.skew import SkewSpec
from repro.workload import DimensionRestriction, QueryClass, QueryMix

__all__ = ["retail_schema", "retail_query_mix"]

#: Default fact-table size (rows) for scale 1.0: one year of daily item/store sales.
RETAIL_BASE_FACT_ROWS = 50_000_000


def retail_schema(
    scale: float = 1.0,
    item_skew_theta: float = 0.8,
    store_skew_theta: float = 0.3,
) -> StarSchema:
    """Build the retail star schema.

    Parameters
    ----------
    scale:
        Fact-table scale factor; 1.0 gives 50 M rows.
    item_skew_theta:
        Zipf theta of the item dimension (defaults to a strongly skewed 0.8 —
        best-sellers dominate).
    store_skew_theta:
        Zipf theta of the store dimension (defaults to a mild 0.3).
    """
    if scale <= 0:
        raise SchemaError(f"scale must be positive, got {scale}")

    date = Dimension(
        name="date",
        levels=[
            Level("year", 3),
            Level("quarter", 12),
            Level("month", 36),
            Level("week", 156),
            Level("day", 1092),
        ],
        row_size_bytes=40,
    )
    store = Dimension(
        name="store",
        levels=[
            Level("region", 8),
            Level("district", 40),
            Level("store", 400),
        ],
        skew=SkewSpec(theta=store_skew_theta),
        row_size_bytes=120,
    )
    item = Dimension(
        name="item",
        levels=[
            Level("department", 20),
            Level("category", 200),
            Level("brand", 2000),
            Level("sku", 40000),
        ],
        skew=SkewSpec(theta=item_skew_theta),
        row_size_bytes=160,
    )
    promotion = Dimension(
        name="promotion",
        levels=[
            Level("promo_type", 5),
            Level("promotion", 300),
        ],
        row_size_bytes=80,
    )

    fact = FactTable(
        name="daily_sales",
        row_count=max(1, int(round(RETAIL_BASE_FACT_ROWS * scale))),
        row_size_bytes=56,
        dimension_names=("date", "store", "item", "promotion"),
        measures=(
            Measure("quantity", 4),
            Measure("revenue", 8),
            Measure("discount", 8),
        ),
    )
    return StarSchema(
        name=f"retail(scale={scale:g})",
        dimensions=(date, store, item, promotion),
        fact_tables=(fact,),
    )


def retail_query_mix() -> QueryMix:
    """Reporting-plus-drill-down mix for the retail schema."""
    classes = [
        QueryClass(
            name="R1-monthly-category",
            restrictions=[
                DimensionRestriction("date", "month"),
                DimensionRestriction("item", "category"),
            ],
            weight=25,
        ),
        QueryClass(
            name="R2-weekly-region",
            restrictions=[
                DimensionRestriction("date", "week"),
                DimensionRestriction("store", "region"),
            ],
            weight=20,
        ),
        QueryClass(
            name="R3-promo-effect",
            restrictions=[
                DimensionRestriction("promotion", "promo_type"),
                DimensionRestriction("date", "quarter"),
            ],
            weight=10,
        ),
        QueryClass(
            name="R4-store-month",
            restrictions=[
                DimensionRestriction("store", "store"),
                DimensionRestriction("date", "month"),
            ],
            weight=15,
        ),
        QueryClass(
            name="R5-sku-tracking",
            restrictions=[
                DimensionRestriction("item", "sku"),
                DimensionRestriction("date", "week"),
            ],
            weight=10,
        ),
        QueryClass(
            name="R6-department-year",
            restrictions=[
                DimensionRestriction("item", "department"),
                DimensionRestriction("date", "year"),
            ],
            weight=10,
        ),
        QueryClass(
            name="R7-district-quarter",
            restrictions=[
                DimensionRestriction("store", "district"),
                DimensionRestriction("date", "quarter"),
            ],
            weight=10,
        ),
    ]
    return QueryMix(classes)
