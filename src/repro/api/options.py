"""Unified engine options: one validated value object instead of kwarg soup.

Before this module, every entry point — :class:`~repro.core.Warlock`, the six
tuning studies, :func:`~repro.analysis.compare_specs`, four CLI subcommands —
re-threaded the same ad-hoc ``jobs`` / ``vectorize`` / ``cache`` /
``cache_dir`` keyword arguments through four layers, each validating (or
forgetting to validate) them on its own.  :class:`EngineOptions` consolidates
them into a single frozen dataclass that is validated once, compared by value,
hashable, JSON round-trippable, and threaded verbatim from the API façade down
to :class:`~repro.engine.EvaluationEngine`.

The legacy keyword arguments remain accepted everywhere as *deprecation
shims*: they behave exactly as before but emit an
:class:`EngineOptionsDeprecationWarning` pointing at the option object.  The
dedicated warning category (still a :class:`DeprecationWarning`) lets CI turn
exactly these shims into errors — internal callers must all be migrated —
without tripping over unrelated third-party deprecations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import AdvisorError

__all__ = [
    "EngineOptions",
    "EngineOptionsDeprecationWarning",
    "UNSET",
    "resolve_engine_options",
]


class EngineOptionsDeprecationWarning(DeprecationWarning):
    """Warning category of the legacy per-kwarg engine-option shims.

    A dedicated subclass so test suites and CI can promote exactly these
    warnings to errors (``-W error::repro.api.options.EngineOptionsDeprecationWarning``)
    while leaving unrelated :class:`DeprecationWarning` sources alone.
    """


#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``.
UNSET = object()

#: Normalized vectorization modes (see :attr:`EngineOptions.vectorize_mode`).
_VECTORIZE_MODES = ("none", "classes", "candidates")


def _validate_jobs(jobs: Union[int, str]) -> None:
    if jobs != "auto" and (not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1):
        raise AdvisorError(
            f'jobs must be a positive integer or "auto", got {jobs!r}'
        )


@dataclass(frozen=True)
class EngineOptions:
    """Execution options of the candidate-evaluation engine.

    Parameters
    ----------
    jobs:
        Worker processes for candidate sweeps.  ``1`` (default) evaluates
        serially in-process, higher values use a process pool with guaranteed
        result parity, ``"auto"`` picks the worker count per sweep from the
        available CPUs and the candidate count (the CLI default).
    vectorize:
        Vectorization mode of the cost sweep.  ``True`` (default, alias
        ``"candidates"``) batches whole chunks of same-axis-structure
        candidates as (candidate × class) numpy arrays; ``"classes"``
        vectorizes one candidate's class axis at a time (the pre-candidate-axis
        default); ``False`` (alias ``"none"``, CLI ``--no-vectorize``) runs
        the scalar reference path.  Results are bit-identical in every mode —
        see :attr:`vectorize_mode` for the normalized value.
    cache:
        ``True`` (default) memoizes access structures and whole candidate
        evaluations in an :class:`~repro.engine.EvaluationCache`; ``False``
        disables memoization entirely (the benchmark's seed-equivalent
        baseline).  To *share* a concrete cache instance across engines or
        sessions, pass it via the ``cache=`` parameter of the respective
        constructor — the instance is a collaboration handle, not an option.
    cache_dir:
        Directory of a persistent cache store (CLI ``--cache-dir``,
        environment ``WARLOCK_CACHE_DIR``).  When set, the cache warm-starts
        from disk and — subject to ``persist`` — spills back after every
        sweep.  Requires ``cache=True``.
    persist:
        ``True`` (default) spills new cache entries back to ``cache_dir``
        after every sweep; ``False`` treats the store as read-only: the run
        still warm-starts from it but never writes back.  Meaningless (and
        ignored) without a ``cache_dir``.
    cache_max_mb:
        Byte budget of the persistent store in megabytes (CLI
        ``--cache-max-mb``).  When set, every save garbage-collects the store
        directory down to the budget, evicting the least-recently-used
        entries first; ``None`` (default) keeps the store unbounded.
        Requires ``cache_dir``.
    fabric:
        ``host:port`` bind address of a distributed sweep coordinator (CLI
        ``--fabric``).  When set, candidate sweeps are leased out to fabric
        workers (``warlock worker host:port``) instead of the local process
        pool; with no reachable workers the coordinator degrades to local
        evaluation after ``fabric_grace`` seconds, so the option is always
        safe.  ``None`` (default) keeps sweeps local.
    fabric_grace:
        Seconds of total worker silence before a fabric sweep degrades to
        local evaluation (CLI ``--fabric-grace``).
    fabric_lease:
        Seconds of heartbeat silence before a fabric chunk lease is re-queued
        to another worker (CLI ``--fabric-lease``).
    """

    jobs: Union[int, str] = 1
    vectorize: Union[bool, str] = True
    cache: bool = True
    cache_dir: Optional[str] = None
    persist: bool = True
    cache_max_mb: Optional[float] = None
    fabric: Optional[str] = None
    fabric_grace: float = 2.0
    fabric_lease: float = 30.0

    def __post_init__(self) -> None:
        _validate_jobs(self.jobs)
        if not isinstance(self.vectorize, bool) and self.vectorize not in (
            _VECTORIZE_MODES
        ):
            raise AdvisorError(
                f"EngineOptions.vectorize must be a bool or one of "
                f"{sorted(_VECTORIZE_MODES)}, got {self.vectorize!r}"
            )
        for name in ("cache", "persist"):
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise AdvisorError(
                    f"EngineOptions.{name} must be a bool, got {value!r}"
                )
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise AdvisorError(
                f"EngineOptions.cache_dir must be a string path or None, "
                f"got {self.cache_dir!r}"
            )
        if self.cache_dir == "":
            raise AdvisorError("EngineOptions.cache_dir must not be empty")
        if self.cache_dir is not None and not self.cache:
            raise AdvisorError(
                "EngineOptions.cache_dir requires cache=True: a persistent "
                "store without an in-memory cache has nothing to fill or spill"
            )
        if self.cache_max_mb is not None:
            if (
                isinstance(self.cache_max_mb, bool)
                or not isinstance(self.cache_max_mb, (int, float))
                or not self.cache_max_mb > 0
            ):
                raise AdvisorError(
                    f"EngineOptions.cache_max_mb must be a positive number or "
                    f"None, got {self.cache_max_mb!r}"
                )
            if self.cache_dir is None:
                raise AdvisorError(
                    "EngineOptions.cache_max_mb requires cache_dir: a byte "
                    "budget without a persistent store bounds nothing"
                )
        if self.fabric is not None:
            # Validated inline (not via repro.fabric) so the options layer
            # stays import-light; the coordinator re-parses at bind time.
            if not isinstance(self.fabric, str) or not self.fabric.strip():
                raise AdvisorError(
                    f"EngineOptions.fabric must be a host:port string or "
                    f"None, got {self.fabric!r}"
                )
            _, sep, port_text = self.fabric.strip().rpartition(":")
            if sep:
                try:
                    port = int(port_text)
                except ValueError:
                    raise AdvisorError(
                        f"EngineOptions.fabric has an invalid port: "
                        f"{self.fabric!r}"
                    )
                if not 0 <= port <= 65535:
                    raise AdvisorError(
                        f"EngineOptions.fabric port out of range: {self.fabric!r}"
                    )
        for name in ("fabric_grace", "fabric_lease"):
            value = getattr(self, name)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value < 0
                or (name == "fabric_lease" and value == 0)
            ):
                bound = "positive" if name == "fabric_lease" else "non-negative"
                raise AdvisorError(
                    f"EngineOptions.{name} must be a {bound} number, got {value!r}"
                )

    # -- derivation -------------------------------------------------------------

    @property
    def vectorize_mode(self) -> str:
        """The normalized vectorization mode: ``none``/``classes``/``candidates``.

        The boolean aliases map ``True`` → ``"candidates"`` (the fully batched
        default) and ``False`` → ``"none"`` (the scalar reference path).
        """
        if self.vectorize is True:
            return "candidates"
        if self.vectorize is False:
            return "none"
        return self.vectorize

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready, round-trips through :meth:`from_dict`)."""
        return {
            "jobs": self.jobs,
            "vectorize": self.vectorize,
            "cache": self.cache,
            "cache_dir": self.cache_dir,
            "persist": self.persist,
            "cache_max_mb": self.cache_max_mb,
            "fabric": self.fabric,
            "fabric_grace": self.fabric_grace,
            "fabric_lease": self.fabric_lease,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "EngineOptions":
        """Build options from a mapping, rejecting unknown keys.

        This is the parser of the JSON config file's ``"engine"`` block; a
        typo like ``"job"`` must be an error, not a silently ignored default.
        """
        if not isinstance(raw, Mapping):
            raise AdvisorError(
                f"engine options must be a mapping, got {type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise AdvisorError(
                f"unknown engine option(s) {', '.join(map(repr, unknown))}; "
                f"known options: {', '.join(sorted(known))}"
            )
        return cls(**dict(raw))

    def describe(self) -> str:
        """One-line summary used by logs and the CLI."""
        mode = self.vectorize_mode
        parts = [
            f"jobs={self.jobs}",
            {
                "none": "scalar",
                "classes": "vectorized (class axis)",
                "candidates": "vectorized",
            }[mode],
        ]
        if not self.cache:
            parts.append("uncached")
        elif self.cache_dir:
            parts.append(
                f"store={self.cache_dir}" + ("" if self.persist else " (read-only)")
            )
            if self.cache_max_mb is not None:
                parts.append(f"budget={self.cache_max_mb:g}MB")
        if self.fabric is not None:
            parts.append(
                f"fabric={self.fabric} "
                f"(lease={self.fabric_lease:g}s, grace={self.fabric_grace:g}s)"
            )
        return ", ".join(parts)


def _warn_deprecated(owner: str, kwarg: str, replacement: str, stacklevel: int) -> None:
    warnings.warn(
        f"{owner}({kwarg}=...) is deprecated; pass "
        f"options=EngineOptions({replacement}) instead",
        EngineOptionsDeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_engine_options(
    options: Optional[EngineOptions],
    *,
    owner: str,
    jobs: Any = UNSET,
    vectorize: Any = UNSET,
    cache: Any = UNSET,
    cache_dir: Any = UNSET,
    stacklevel: int = 5,
) -> Tuple[EngineOptions, Optional[Any]]:
    """Merge an :class:`EngineOptions` with the legacy per-kwarg shims.

    Returns ``(options, shared_cache)`` where ``shared_cache`` is the concrete
    :class:`~repro.engine.EvaluationCache` instance the caller passed for
    cross-engine sharing (or ``None``).  Legacy kwargs (``jobs=``,
    ``vectorize=``, ``cache_dir=``, and the ``cache=False`` switch) emit an
    :class:`EngineOptionsDeprecationWarning` and are folded into the returned
    options; combining them with an explicit ``options=`` is an error — the
    two would silently fight over the same knob.

    ``stacklevel`` pins the warning to the *shimmed callable's caller*.  The
    default 5 counts warn(1) -> merge(2) -> resolve_engine_options(3) -> the
    shimmed constructor/function(4) -> its caller(5); a shim one call deeper
    (the studies' ``_study_setup``) passes 6.
    """
    explicit = options is not None
    resolved = options if explicit else EngineOptions()

    def merge(kwarg: str, replacement: str, **changes: Any) -> EngineOptions:
        if explicit:
            raise AdvisorError(
                f"{owner}: pass either options=EngineOptions(...) or the "
                f"deprecated {kwarg}= keyword, not both"
            )
        # Validate before warning: an invalid value raises the same
        # AdvisorError it always did, without a warning riding along.
        updated = resolved.replace(**changes)
        _warn_deprecated(owner, kwarg, replacement, stacklevel)
        return updated

    if jobs is not UNSET:
        resolved = merge("jobs", f"jobs={jobs!r}", jobs=jobs)
    if vectorize is not UNSET:
        resolved = merge(
            "vectorize",
            f"vectorize={vectorize!r}",
            vectorize=vectorize if isinstance(vectorize, str) else bool(vectorize),
        )
    if cache_dir is not UNSET and cache_dir is not None:
        resolved = merge(
            "cache_dir", f"cache_dir={cache_dir!r}", cache_dir=str(cache_dir)
        )

    shared_cache = None
    if cache is not UNSET:
        if cache is False:
            # cache=False always ignored cache_dir; keep that contract.
            resolved = merge("cache", "cache=False", cache=False, cache_dir=None)
        elif cache is not None:
            # A concrete EvaluationCache instance: the supported sharing hook,
            # not a deprecated option (sessions, studies and comparisons pass
            # one cache around by design).
            shared_cache = cache
    return resolved, shared_cache
