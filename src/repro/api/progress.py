"""Progress events and cooperative cancellation for candidate sweeps.

The evaluation plan knows every work unit of a sweep up front, and the
executor already dispatches candidates in chunks — so per-chunk completion is
free to surface.  :class:`ProgressEvent` is the value object the engine emits
at every chunk boundary (serial mode treats each candidate as its own chunk;
the pool emits one event per completed worker chunk), and
:class:`CancellationToken` is the cooperative cancel switch the engine checks
at the same boundaries.

Cancellation is *cooperative and chunk-granular*: a set token makes the
engine stop dispatching further chunks and raise
:class:`~repro.errors.EvaluationCancelled`.  Everything completed before the
cancel — including cache entries, which are content-addressed functions of
their inputs — remains valid, so a later retry resumes warm.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Union

__all__ = [
    "ProgressEvent",
    "CancellationToken",
    "ProgressCallback",
    "CancelSignal",
    "cancel_requested",
    "sweep_scoped",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One chunk-boundary snapshot of a running candidate sweep.

    ``chunk``/``num_chunks`` count the chunks this sweep actually dispatches
    (cache-answered candidates never reach a chunk); ``completed``/``total``
    count candidates including the cache-answered ones, so a meter rendered
    from the events always ends at ``total``.  ``chunk`` 0 is the start
    event a pool sweep emits after answering its warm candidates.
    """

    phase: str
    #: Candidates finished so far (cache-answered included) / in the sweep.
    completed: int
    total: int
    #: Completed chunk count (1-based) / chunks dispatched by this sweep.
    chunk: int
    num_chunks: int
    #: (candidate × query class) work units finished / expanded by the plan.
    completed_units: int
    total_units: int
    #: Label of the last candidate the completed chunk evaluated ("" at start).
    label: str = ""
    #: Composite requests (``tune``/``simulate`` with their implicit
    #: recommend) run several sweeps under one meter; ``sweep``/``num_sweeps``
    #: say which sweep of the request this event belongs to.  Plain
    #: single-sweep requests leave both at 1.
    sweep: int = 1
    num_sweeps: int = 1
    #: Live fabric workers serving this sweep (0 on local sweeps).
    workers: int = 0
    #: True when the sweep is running in degraded mode — the parallel or
    #: fabric path failed (or no workers were reachable) and the engine fell
    #: back to local serial evaluation.  Results are unaffected; only the
    #: execution strategy changed.
    degraded: bool = False

    @property
    def fraction(self) -> float:
        """Completed fraction of the sweep's candidates (0.0 on empty sweeps)."""
        return self.completed / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready) for serving progress over a wire."""
        return {
            "phase": self.phase,
            "completed": self.completed,
            "total": self.total,
            "chunk": self.chunk,
            "num_chunks": self.num_chunks,
            "completed_units": self.completed_units,
            "total_units": self.total_units,
            "label": self.label,
            "sweep": self.sweep,
            "num_sweeps": self.num_sweeps,
            "workers": self.workers,
            "degraded": self.degraded,
            "fraction": self.fraction,
        }

    def describe(self) -> str:
        """One-line meter text (the CLI's ``--progress`` line)."""
        text = (
            f"{self.phase} {self.completed}/{self.total} candidates "
            f"(chunk {self.chunk}/{self.num_chunks})"
        )
        if self.num_sweeps > 1:
            text = f"sweep {self.sweep}/{self.num_sweeps}: " + text
        if self.workers:
            text += f" [{self.workers} worker(s)]"
        if self.degraded:
            text += " [degraded]"
        if self.label:
            text += f" {self.label}"
        return text


class CancellationToken:
    """Thread-safe cooperative cancel switch.

    Hand the token to a sweep (``cancel=token``) and call :meth:`cancel` from
    anywhere — a signal handler, a UI thread, a progress callback.  The engine
    checks the token at chunk boundaries and raises
    :class:`~repro.errors.EvaluationCancelled` when it is set.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<CancellationToken {state}>"


def sweep_scoped(
    on_progress: Optional["ProgressCallback"], sweep: int, num_sweeps: int
) -> Optional["ProgressCallback"]:
    """Re-emit a sweep's events stamped as sweep ``sweep`` of ``num_sweeps``.

    Composite requests (a ``tune`` that first runs its implicit recommend,
    then the study settings) forward each inner sweep's events through this
    wrapper so a consumer can render one meter per *request*: "sweep k of n"
    plus the inner sweep's own completion ratio.  ``None`` passes through, so
    call sites need no progress-enabled special case.
    """
    if on_progress is None:
        return None

    def scoped(event: ProgressEvent) -> None:
        on_progress(replace(event, sweep=sweep, num_sweeps=num_sweeps))

    return scoped


def cancel_requested(cancel: Any) -> bool:
    """True when a cancel signal (token, callable, or ``None``) is set.

    The duck-typed check the engine and the tuning studies share: ``None``
    never cancels, a callable is polled, anything else is read through its
    ``cancelled`` attribute (the :class:`CancellationToken` protocol).
    """
    if cancel is None:
        return False
    if callable(cancel):
        return bool(cancel())
    return bool(getattr(cancel, "cancelled", False))


#: A progress consumer: any callable accepting one :class:`ProgressEvent`.
ProgressCallback = Callable[[ProgressEvent], None]

#: A cancel source: a :class:`CancellationToken` or a zero-argument callable
#: returning truthy once the sweep should stop.
CancelSignal = Union[CancellationToken, Callable[[], bool]]
