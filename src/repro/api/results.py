"""Typed results the session returns — every one directly servable.

Each request type of :mod:`repro.api.requests` has a result wrapper here.
The wrappers keep the rich library objects (the
:class:`~repro.core.Recommendation`, the evaluated candidates, the
:class:`~repro.tuning.TuningStudy`) for programmatic callers, and add the two
things a serving front end needs: a stable ``to_dict()`` (JSON-ready, built on
the exporters of :mod:`repro.io`) and, for recommendations, the content
``fingerprint`` that proves result parity across sessions, deltas, worker
counts and cache states.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

from repro.core.advisor import Recommendation
from repro.core.candidates import FragmentationCandidate
from repro.simulation.simulator import WorkloadSimulationResult
from repro.tuning import TuningStudy

__all__ = [
    "RecommendResult",
    "EvaluateSpecResult",
    "CompareResult",
    "TuneResult",
    "SimulateResult",
]


@dataclass(frozen=True)
class RecommendResult:
    """A ranked recommendation plus its parity fingerprint."""

    recommendation: Recommendation

    @property
    def best(self) -> FragmentationCandidate:
        """The top-ranked fragmentation candidate."""
        return self.recommendation.best

    @cached_property
    def fingerprint(self) -> str:
        """Content fingerprint of the full recommendation (parity checks)."""
        from repro.engine import recommendation_fingerprint

        return recommendation_fingerprint(self.recommendation)

    def to_dict(self, include_all_candidates: bool = False) -> Dict[str, Any]:
        payload = self.recommendation.to_dict(
            include_all_candidates=include_all_candidates
        )
        payload["fingerprint"] = self.fingerprint
        return payload

    def describe(self) -> str:
        return self.recommendation.describe()


@dataclass(frozen=True)
class EvaluateSpecResult:
    """One fully evaluated fragmentation candidate."""

    candidate: FragmentationCandidate

    def to_dict(self, include_allocation: bool = False) -> Dict[str, Any]:
        return self.candidate.to_dict(include_allocation=include_allocation)


@dataclass(frozen=True)
class CompareResult:
    """A side-by-side comparison of evaluated candidates.

    ``candidates`` preserves request order; ``baseline`` is the extra
    candidate the ratio columns divide by (when the request named one).
    """

    candidates: Tuple[FragmentationCandidate, ...]
    baseline: Optional[FragmentationCandidate]
    table: str

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "candidates": [candidate.summary() for candidate in self.candidates],
            "table": self.table,
        }
        if self.baseline is not None:
            payload["baseline"] = self.baseline.summary()
        return payload

    def describe(self) -> str:
        return self.table


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one what-if study."""

    study: TuningStudy

    def to_dict(self) -> Dict[str, Any]:
        return self.study.to_dict()

    def describe(self) -> str:
        return self.study.format()


@dataclass(frozen=True)
class SimulateResult:
    """A simulated workload replay next to the analytical prediction."""

    candidate_label: str
    simulation: WorkloadSimulationResult
    predicted_io_cost_ms: float
    predicted_response_time_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fragmentation": self.candidate_label,
            "simulation": self.simulation.to_dict(),
            "predicted": {
                "io_cost_ms": self.predicted_io_cost_ms,
                "response_time_ms": self.predicted_response_time_ms,
            },
        }

    def describe(self) -> str:
        return (
            self.simulation.describe()
            + f"\nAnalytical prediction: response "
            f"{self.predicted_response_time_ms:,.1f} ms, "
            f"I/O cost {self.predicted_io_cost_ms:,.1f} ms"
        )
