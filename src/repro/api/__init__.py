"""The serving façade: sessions, typed requests, options, progress.

This package is the API surface a front end (CLI, service, notebook) builds
on:

* :class:`~repro.api.options.EngineOptions` — one validated value object for
  the execution knobs (``jobs``, ``vectorize``, ``cache``, ``cache_dir``,
  ``persist``) that used to travel as ad-hoc kwargs through four layers.
* :class:`~repro.api.session.AdvisorSession` — compile the inputs once, serve
  typed requests, derive incrementally edited sessions with
  :meth:`~repro.api.session.AdvisorSession.with_delta` (shared cache, exact
  reuse, fingerprint parity with fresh advisors).
* :mod:`~repro.api.requests` / :mod:`~repro.api.results` — the typed
  request/result pairs, each result with a stable ``to_dict()``.
* :mod:`~repro.api.progress` — :class:`ProgressEvent` chunk-boundary
  callbacks and :class:`CancellationToken` cooperative cancellation.
"""

from repro.api.options import (
    EngineOptions,
    EngineOptionsDeprecationWarning,
    resolve_engine_options,
)
from repro.api.progress import CancellationToken, ProgressEvent
from repro.api.requests import (
    TUNE_STUDIES,
    CompareRequest,
    EvaluateSpecRequest,
    RecommendRequest,
    SimulateRequest,
    TuneRequest,
    request_from_dict,
)
from repro.api.results import (
    CompareResult,
    EvaluateSpecResult,
    RecommendResult,
    SimulateResult,
    TuneResult,
)
from repro.api.session import AdvisorSession

__all__ = [
    "EngineOptions",
    "EngineOptionsDeprecationWarning",
    "resolve_engine_options",
    "ProgressEvent",
    "CancellationToken",
    "AdvisorSession",
    "RecommendRequest",
    "EvaluateSpecRequest",
    "CompareRequest",
    "TuneRequest",
    "SimulateRequest",
    "request_from_dict",
    "TUNE_STUDIES",
    "RecommendResult",
    "EvaluateSpecResult",
    "CompareResult",
    "TuneResult",
    "SimulateResult",
]
