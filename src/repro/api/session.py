"""The advisor session: compile once, serve many requests, edit incrementally.

The paper frames WARLOCK as an *interactive* what-if tool: an administrator
loads one warehouse and then varies disks, skew and query-mix weights against
it, comparing the predictions.  That access pattern is a session — not the
one-shot ``Warlock(...)`` constructor call the library grew up around, which
re-validated the schema, re-designed the bitmap scheme and re-compiled the
columnar class matrix on every what-if variation.

:class:`AdvisorSession` compiles the inputs once (schema validation, workload
validation, bitmap-scheme design, class-matrix compilation — all memoized on
the session's single :class:`~repro.engine.EvaluationEngine`), holds the
shared :class:`~repro.engine.EvaluationCache`, and serves typed requests
(:mod:`repro.api.requests`).  :meth:`AdvisorSession.with_delta` derives an
edited session — different disk count, architecture, skew, mix weights —
that *shares the cache*, so every entry the edit does not invalidate is
reused: the cache keys are content signatures of exactly the inputs that can
move a number, which makes the reuse automatic and exact (fingerprint parity
against a fresh advisor is asserted by the test suite and the E11 benchmark).

Every request accepts ``on_progress=`` / ``cancel=`` (see
:mod:`repro.api.progress`); events fire at the evaluation plan's chunk
boundaries in both the serial and the process-pool backend.

:class:`~repro.core.Warlock` remains as a thin compatibility wrapper over a
session.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.options import EngineOptions
from repro.api.progress import CancelSignal, ProgressCallback
from repro.api.requests import (
    CompareRequest,
    EvaluateSpecRequest,
    RecommendRequest,
    SimulateRequest,
    TuneRequest,
)
from repro.api.results import (
    CompareResult,
    EvaluateSpecResult,
    RecommendResult,
    SimulateResult,
    TuneResult,
)
from repro.bitmap import BitmapScheme
from repro.core.advisor import DEFAULT_CACHE_ENTRIES, Recommendation
from repro.core.candidates import FragmentationCandidate
from repro.core.config import AdvisorConfig
from repro.core.ranking import rank_candidates_columnar
from repro.core.thresholds import ExclusionReport, evaluate_thresholds
from repro.engine import EvaluationCache, EvaluationEngine
from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec, enumerate_point_fragmentations
from repro.schema import StarSchema, validate_schema
from repro.storage import SystemParameters
from repro.workload import QueryMix

__all__ = ["AdvisorSession"]

#: Request types -> session methods; the dispatch table of :meth:`submit`.
_Request = Union[
    RecommendRequest, EvaluateSpecRequest, CompareRequest, TuneRequest, SimulateRequest
]


# lint: not-thread-safe instances=session
class AdvisorSession:
    """A long-lived advisor bound to one (schema, workload, system) input set.

    Parameters
    ----------
    schema, workload, system, config:
        The advisor inputs (see :class:`~repro.core.Warlock`).
    fact_table:
        Fact table to fragment (the schema's primary fact table when omitted).
    options:
        Execution options (:class:`~repro.api.EngineOptions`); defaults to
        serial, vectorized, cached, memory-only.
    cache:
        A concrete :class:`~repro.engine.EvaluationCache` to share with other
        sessions/engines.  ``None`` (default) creates a private bounded cache
        when ``options.cache`` is true.  :meth:`with_delta` passes the
        session's cache to the derived session, which is what makes
        incremental what-if edits warm.
    """

    def __init__(
        self,
        schema: StarSchema,
        workload: QueryMix,
        system: SystemParameters,
        config: Optional[AdvisorConfig] = None,
        fact_table: Optional[str] = None,
        options: Optional[EngineOptions] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.options = options if options is not None else EngineOptions()
        if not isinstance(self.options, EngineOptions):
            raise AdvisorError(
                f"options must be EngineOptions, got {type(self.options).__name__}"
            )
        self.schema = schema
        self.workload = workload
        self.system = system
        self.config = config if config is not None else AdvisorConfig()
        self.fact = schema.fact_table(fact_table)
        self.schema_warnings = validate_schema(schema)
        if cache is not None:
            self.cache: Optional[EvaluationCache] = cache
        elif self.options.cache:
            # Bounded by default: a session is long-lived by design, so the
            # cache must not grow without limit across many large sweeps.
            self.cache = EvaluationCache(max_entries=DEFAULT_CACHE_ENTRIES)
        else:
            self.cache = None
        # One engine for the session's lifetime: construction validates the
        # workload once; the bitmap scheme and the columnar class matrix are
        # compiled on first use and memoized for every later request.
        self.engine = EvaluationEngine(
            schema,
            workload,
            system,
            self.config,
            fact_table=self.fact.name,
            options=self.options,
            cache=self.cache,
        )
        #: (input fingerprint, result) of the last full recommend() — repeated
        #: identical requests on an unchanged session answer O(1) from here.
        self._recommend_memo: Optional[Tuple[str, RecommendResult]] = None

    # -- compiled inputs --------------------------------------------------------

    def design_bitmaps(self) -> BitmapScheme:
        """The workload-driven bitmap scheme (designed once per session)."""
        return self.engine.bitmap_scheme()

    def _exclusion_key(self) -> Tuple[str, str]:
        """Content key of the candidate enumeration + threshold evaluation.

        Covers every input the enumeration and the threshold rules read:
        schema (hierarchies, fact volumes), fact table, system (disk count,
        capacity, prefetch hints) and the config (bounds, dimensionality,
        baseline inclusion).
        """
        from repro.engine import object_signature, stable_digest

        return (
            "exclusions",
            stable_digest(
                "ExclusionInputs",
                object_signature(self.schema),
                self.fact.name,
                object_signature(self.system),
                object_signature(self.config),
            ),
        )

    def generate_specs(self) -> Tuple[List[FragmentationSpec], ExclusionReport]:
        """Enumerate point fragmentations and apply the exclusion thresholds.

        The outcome — surviving specs *and* the exclusion report with its
        per-candidate threshold diagnostics — is cached under a content key
        over (schema, fact, system, config) and persisted with the cache
        store, so warm-from-disk runs reproduce the ``Recommendation``
        diagnostics without re-enumerating or re-deriving a single threshold.
        """
        key = self._exclusion_key() if self.cache is not None else None
        if key is not None:
            payload = self.cache.get_exclusions(key)
            if payload is not None:
                specs = [
                    FragmentationSpec.of(*map(tuple, pairs))
                    for pairs in payload["specs"]
                ]
                report = ExclusionReport(
                    considered=payload["considered"],
                    excluded={
                        label: tuple(violations)
                        for label, violations in payload["excluded"].items()
                    },
                )
                return specs, report
        report = ExclusionReport()
        surviving: List[FragmentationSpec] = []
        for spec in enumerate_point_fragmentations(
            self.schema,
            fact_table=self.fact.name,
            max_dimensions=self.config.max_fragmentation_dimensions,
            include_baseline=self.config.include_baseline,
        ):
            violations = evaluate_thresholds(
                spec, self.schema, self.fact, self.system, self.config
            )
            report.record(spec, violations)
            if not violations:
                surviving.append(spec)
        if not surviving:
            raise AdvisorError(
                "all fragmentation candidates were excluded by the thresholds; "
                "relax min/max fragment bounds or check the system parameters"
            )
        if key is not None:
            self.cache.put_exclusions(
                key,
                {
                    "specs": [
                        [[a.dimension, a.level] for a in spec.attributes]
                        for spec in surviving
                    ],
                    "considered": report.considered,
                    "excluded": {
                        label: list(violations)
                        for label, violations in report.excluded.items()
                    },
                },
            )
        return surviving, report

    # -- requests ---------------------------------------------------------------

    def submit(
        self,
        request: _Request,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ):
        """Serve one typed request (the generic front-end entry point)."""
        if isinstance(request, RecommendRequest):
            return self.recommend(on_progress=on_progress, cancel=cancel)
        if isinstance(request, EvaluateSpecRequest):
            return self.evaluate(request, on_progress=on_progress, cancel=cancel)
        if isinstance(request, CompareRequest):
            return self.compare(
                request.specs,
                baseline_spec=request.baseline_spec,
                on_progress=on_progress,
                cancel=cancel,
            )
        if isinstance(request, TuneRequest):
            return self.tune(
                request.study,
                spec=request.spec,
                settings=request.settings,
                on_progress=on_progress,
                cancel=cancel,
            )
        if isinstance(request, SimulateRequest):
            return self.simulate(
                fragmentation=request.fragmentation,
                queries_per_class=request.queries_per_class,
                seed=request.seed,
                on_progress=on_progress,
                cancel=cancel,
            )
        raise AdvisorError(
            f"unknown request type {type(request).__name__}; expected one of "
            f"RecommendRequest, EvaluateSpecRequest, CompareRequest, "
            f"TuneRequest, SimulateRequest"
        )

    def _input_fingerprint(self) -> str:
        """Content fingerprint of every input a ``recommend()`` reads."""
        from repro.engine import EvaluationCache, object_signature, stable_digest

        return stable_digest(
            "RecommendInputs",
            object_signature(self.schema),
            self.fact.name,
            EvaluationCache.workload_signature(self.workload),
            object_signature(self.system),
            object_signature(self.config),
        )

    def recommend(
        self,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ) -> RecommendResult:
        """Run the full pipeline and return the ranked recommendation.

        A repeated identical ``recommend()`` on an unchanged session returns
        the previous result O(1) from a session-level input-fingerprint memo
        — no enumeration, no sweep, not even warm cache probes.  The memo is
        guarded by a content fingerprint of every input the pipeline reads,
        so a (hypothetically) mutated input recomputes; a memoized answer
        emits a single completed :class:`~repro.api.ProgressEvent` instead of
        per-chunk events.  Disabled together with caching
        (``options.cache=False`` keeps every run a full recomputation).
        """
        fingerprint = self._input_fingerprint() if self.options.cache else None
        memo = self._recommend_memo
        if memo is not None and memo[0] == fingerprint:
            # The cancellation contract holds even for memoized answers: a
            # request whose signal is already set raises, never returns.
            from repro.api.progress import cancel_requested
            from repro.errors import EvaluationCancelled

            if cancel_requested(cancel):
                raise EvaluationCancelled(
                    "recommend() cancelled before returning the memoized result"
                )
            result = memo[1]
            if on_progress is not None:
                from repro.api.progress import ProgressEvent

                total = len(result.recommendation.evaluated)
                per_candidate = len(self.workload)
                on_progress(
                    ProgressEvent(
                        phase="evaluate",
                        completed=total,
                        total=total,
                        # One logical chunk that is already complete: consumers
                        # computing chunk/num_chunks ratios must never divide
                        # by zero on a memoized answer.
                        chunk=1,
                        num_chunks=1,
                        completed_units=total * per_candidate,
                        total_units=total * per_candidate,
                        label="memoized",
                    )
                )
            return result
        specs, report = self.generate_specs()
        candidates = self.engine.evaluate_specs(
            specs, on_progress=on_progress, cancel=cancel
        )
        ranked = rank_candidates_columnar(
            candidates,
            top_fraction=self.config.top_fraction,
            top_candidates=self.config.top_candidates,
        )
        recommendation = Recommendation(
            ranked=tuple(ranked),
            evaluated=tuple(candidates),
            exclusion_report=report,
            config=self.config,
            schema=self.schema,
            workload=self.workload,
            system=self.system,
        )
        result = RecommendResult(recommendation)
        if fingerprint is not None:
            self._recommend_memo = (fingerprint, result)
        return result

    def evaluate(
        self,
        request: EvaluateSpecRequest,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ) -> EvaluateSpecResult:
        """Fully evaluate a single fragmentation candidate.

        A single candidate is below chunk granularity, so the progress/cancel
        contract degenerates to the request boundary: a pre-set ``cancel``
        signal raises :class:`~repro.errors.EvaluationCancelled` before any
        work, and ``on_progress`` receives exactly one completed event once
        the candidate is evaluated.
        """
        from repro.api.progress import ProgressEvent, cancel_requested
        from repro.errors import EvaluationCancelled

        if cancel_requested(cancel):
            raise EvaluationCancelled(
                "evaluate cancelled before evaluating the candidate"
            )
        scheme = None
        if request.bitmap_exclude:
            scheme = self.design_bitmaps().without(*request.bitmap_exclude)
        candidate = self.engine.evaluate_spec(request.spec, bitmap_scheme=scheme)
        if on_progress is not None:
            per_candidate = len(self.workload)
            on_progress(
                ProgressEvent(
                    phase="evaluate",
                    completed=1,
                    total=1,
                    chunk=1,
                    num_chunks=1,
                    completed_units=per_candidate,
                    total_units=per_candidate,
                    label=request.spec.label,
                )
            )
        return EvaluateSpecResult(candidate)

    def evaluate_spec(
        self,
        spec: FragmentationSpec,
        bitmap_scheme: Optional[BitmapScheme] = None,
    ) -> FragmentationCandidate:
        """Low-level single-candidate evaluation (compatibility surface)."""
        return self.engine.evaluate_spec(spec, bitmap_scheme=bitmap_scheme)

    def compare(
        self,
        specs: Sequence[FragmentationSpec],
        baseline_spec: Optional[FragmentationSpec] = None,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ) -> CompareResult:
        """Evaluate ``specs`` through the session's engine and render the table."""
        from repro.analysis import compare_candidates

        if not specs:
            raise AdvisorError("compare needs at least one spec")
        sweep = list(specs) if baseline_spec is None else [baseline_spec, *specs]
        candidates = self.engine.evaluate_specs(
            sweep, on_progress=on_progress, cancel=cancel
        )
        if baseline_spec is None:
            baseline = None
            compared = tuple(candidates)
            table = compare_candidates(candidates)
        else:
            baseline = candidates[0]
            compared = tuple(candidates[1:])
            table = compare_candidates(candidates, baseline=baseline)
        return CompareResult(candidates=compared, baseline=baseline, table=table)

    def tune(
        self,
        study: str,
        spec: Optional[FragmentationSpec] = None,
        settings: Any = None,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ) -> TuneResult:
        """Run one what-if study (see :data:`repro.api.requests.TUNE_STUDIES`).

        ``spec`` defaults to the session's recommended fragmentation (warm
        from the cache after a previous :meth:`recommend`).  The study shares
        the session's cache, so settings that keep the access structures
        unchanged reuse the session's earlier work.  ``cancel`` is checked at
        every setting boundary (and inside the implicit recommend);
        ``on_progress`` receives one composite meter for the whole request —
        the implicit recommend sweep is reported as sweep 1 of 2 and the
        per-setting study events as sweep 2 of 2 (a request with an explicit
        ``spec`` runs a single study sweep).
        """
        from repro.api.progress import sweep_scoped
        from repro.tuning import (
            architecture_study,
            bitmap_exclusion_study,
            disk_count_study,
            prefetch_study,
            workload_weight_study,
        )

        study_progress = on_progress
        if spec is None:
            spec = self.recommend(
                on_progress=sweep_scoped(on_progress, 1, 2), cancel=cancel
            ).best.spec
            study_progress = sweep_scoped(on_progress, 2, 2)
        common = dict(
            config=self.config,
            cache=self.cache,
            options=self.options,
            cancel=cancel,
            on_progress=study_progress,
        )
        if study == "disks":
            args = {} if settings is None else {"disk_counts": tuple(settings)}
            result = disk_count_study(
                self.schema, self.workload, self.system, spec, **args, **common
            )
        elif study == "architecture":
            result = architecture_study(
                self.schema, self.workload, self.system, spec, **common
            )
        elif study == "prefetch":
            args = {} if settings is None else {"fact_granules": tuple(settings)}
            result = prefetch_study(
                self.schema, self.workload, self.system, spec, **args, **common
            )
        elif study == "bitmaps":
            args = (
                {}
                if settings is None
                else {"exclusions": tuple(tuple(map(tuple, e)) for e in settings)}
            )
            result = bitmap_exclusion_study(
                self.schema, self.workload, self.system, spec, **args, **common
            )
        elif study == "weights":
            if not isinstance(settings, Mapping) or not settings:
                raise AdvisorError(
                    'the "weights" study needs settings mapping a label to '
                    "the weight overrides, e.g. {'drill-heavy': {'q1': 10.0}}"
                )
            result = workload_weight_study(
                self.schema,
                self.workload,
                self.system,
                spec,
                reweightings={k: dict(v) for k, v in settings.items()},
                **common,
            )
        else:
            raise AdvisorError(
                f"unknown tuning study {study!r}; known studies: "
                "disks, architecture, prefetch, bitmaps, weights"
            )
        return TuneResult(result)

    def simulate(
        self,
        fragmentation: Optional[str] = None,
        queries_per_class: int = 10,
        seed: int = 0,
        on_progress: Optional[ProgressCallback] = None,
        cancel: Optional[CancelSignal] = None,
    ) -> SimulateResult:
        """Replay the workload on an evaluated candidate's allocation.

        A composite request: the implicit recommend sweep reports as sweep 1
        of 2, the replay itself as a single completed event in sweep 2 of 2
        (the event-driven simulation has no chunk boundaries of its own).
        """
        from repro.api.progress import ProgressEvent, cancel_requested, sweep_scoped
        from repro.errors import EvaluationCancelled
        from repro.simulation import DiskSimulator

        recommendation = self.recommend(
            on_progress=sweep_scoped(on_progress, 1, 2), cancel=cancel
        )
        candidate = (
            recommendation.recommendation.candidate(fragmentation)
            if fragmentation
            else recommendation.best
        )
        if cancel_requested(cancel):
            raise EvaluationCancelled("simulate cancelled before the replay")
        simulator = DiskSimulator(self.system)
        replay = simulator.run_workload(
            candidate.layout,
            self.workload,
            candidate.bitmap_scheme,
            candidate.allocation,
            candidate.prefetch,
            queries_per_class=queries_per_class,
            seed=seed,
        )
        if on_progress is not None:
            queries = len(self.workload) * queries_per_class
            on_progress(
                ProgressEvent(
                    phase="simulate",
                    completed=1,
                    total=1,
                    chunk=1,
                    num_chunks=1,
                    completed_units=queries,
                    total_units=queries,
                    label=candidate.label,
                    sweep=2,
                    num_sweeps=2,
                )
            )
        return SimulateResult(
            candidate_label=candidate.label,
            simulation=replay,
            predicted_io_cost_ms=candidate.io_cost_ms,
            predicted_response_time_ms=candidate.response_time_ms,
        )

    # -- incremental what-if edits ---------------------------------------------

    def with_delta(
        self,
        *,
        disks: Optional[int] = None,
        architecture: Optional[str] = None,
        prefetch_fact: Optional[Union[int, str]] = None,
        skew: Optional[Mapping[str, float]] = None,
        mix_weights: Optional[Mapping[str, float]] = None,
        schema: Optional[StarSchema] = None,
        workload: Optional[QueryMix] = None,
        system: Optional[SystemParameters] = None,
        config: Optional[AdvisorConfig] = None,
        options: Optional[EngineOptions] = None,
    ) -> "AdvisorSession":
        """Derive a session with an incremental what-if edit applied.

        Convenience deltas (``disks``, ``architecture``, ``prefetch_fact``,
        ``skew``, ``mix_weights``) edit the current inputs; the block
        arguments (``schema``, ``workload``, ``system``, ``config``) replace
        them outright before the convenience deltas apply.  The derived
        session **shares this session's evaluation cache**, so every entry
        whose inputs the delta leaves unchanged is reused — e.g. a disk-count
        or weight edit reuses all access structures, and reverting an edit
        reuses the whole earlier sweep.  Results are guaranteed identical to
        a fresh advisor built from the edited inputs (content-addressed cache
        keys cover every input that can move a number).
        """
        new_system = system if system is not None else self.system
        if disks is not None:
            new_system = new_system.with_disks(disks)
        if architecture is not None:
            new_system = new_system.with_architecture(architecture)
        if prefetch_fact is not None:
            new_system = new_system.with_prefetch(fact=prefetch_fact)
        new_schema = schema if schema is not None else self.schema
        if skew:
            new_schema = new_schema.with_skew(skew)
        new_workload = workload if workload is not None else self.workload
        if mix_weights:
            new_workload = new_workload.reweighted(dict(mix_weights))
        return AdvisorSession(
            new_schema,
            new_workload,
            new_system,
            config=config if config is not None else self.config,
            # Convenience deltas keep the fact tables, so the session's fact
            # carries over; a wholesale schema replacement re-resolves the
            # primary fact table of the new schema.
            fact_table=self.fact.name if schema is None else None,
            options=options if options is not None else self.options,
            cache=self.cache,
        )

    # -- bookkeeping ------------------------------------------------------------

    @property
    def stats(self):
        """Hit/miss counters of the session cache (``None`` when uncached)."""
        return self.cache.stats if self.cache is not None else None

    def persist_cache(self) -> Optional[int]:
        """Flush unsaved cache entries to the attached persistent store."""
        if self.cache is None or not self.options.persist:
            return None
        return self.cache.persist()

    def close(self) -> None:
        """End the session: flush the cache to its persistent store."""
        self.persist_cache()

    def __enter__(self) -> "AdvisorSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary used by logs and examples."""
        cached = "uncached" if self.cache is None else f"{len(self.cache)} cache entries"
        return (
            f"AdvisorSession(schema={self.schema.name!r}, "
            f"classes={len(self.workload)}, {self.system.describe()}, "
            f"{self.options.describe()}, {cached})"
        )
