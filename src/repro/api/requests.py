"""Typed requests an :class:`~repro.api.AdvisorSession` serves.

Each request is a small frozen dataclass describing *what* the caller wants —
a recommendation, a single-spec evaluation, a comparison, a what-if study, a
simulated replay — with none of the *how* (worker counts, caches, progress
plumbing), which lives in the session's :class:`~repro.api.EngineOptions`.
Requests are plain values: hashable, comparable, and serializable through
``to_dict`` / ``from_dict``, so a service front end can accept them straight
off a wire and hand them to :meth:`AdvisorSession.submit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import AdvisorError
from repro.fragmentation import FragmentationSpec

__all__ = [
    "RecommendRequest",
    "EvaluateSpecRequest",
    "CompareRequest",
    "TuneRequest",
    "SimulateRequest",
    "TUNE_STUDIES",
]

#: Study names :class:`TuneRequest` accepts, mapped by the session onto the
#: corresponding :mod:`repro.tuning` study (see ``AdvisorSession.tune``).
TUNE_STUDIES = ("disks", "architecture", "prefetch", "bitmaps", "weights")


def _spec_dict(spec: FragmentationSpec) -> Dict[str, Any]:
    return {
        "attributes": [
            {"dimension": attribute.dimension, "level": attribute.level}
            for attribute in spec.attributes
        ]
    }


def _spec_from_dict(raw: Mapping[str, Any]) -> FragmentationSpec:
    return FragmentationSpec.of(
        *(
            (attribute["dimension"], attribute["level"])
            for attribute in raw.get("attributes", ())
        )
    )


@dataclass(frozen=True)
class RecommendRequest:
    """Run the full pipeline: enumerate, exclude, evaluate, rank."""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "recommend"}


@dataclass(frozen=True)
class EvaluateSpecRequest:
    """Fully evaluate one fragmentation candidate.

    ``bitmap_exclude`` drops the listed ``(dimension, level)`` indexes from
    the workload-driven bitmap scheme before evaluating (the space-saving
    knob of the paper's §3.3).
    """

    spec: FragmentationSpec
    bitmap_exclude: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "bitmap_exclude",
            tuple((str(d), str(l)) for d, l in self.bitmap_exclude),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "evaluate_spec",
            "spec": _spec_dict(self.spec),
            "bitmap_exclude": [list(pair) for pair in self.bitmap_exclude],
        }


@dataclass(frozen=True)
class CompareRequest:
    """Evaluate several specs and render the side-by-side comparison."""

    specs: Tuple[FragmentationSpec, ...]
    baseline_spec: Optional[FragmentationSpec] = None

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        if not specs:
            raise AdvisorError("CompareRequest needs at least one spec")
        object.__setattr__(self, "specs", specs)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "compare",
            "specs": [_spec_dict(spec) for spec in self.specs],
        }
        if self.baseline_spec is not None:
            payload["baseline_spec"] = _spec_dict(self.baseline_spec)
        return payload


@dataclass(frozen=True)
class TuneRequest:
    """Run one what-if study over a fixed fragmentation.

    ``study`` is one of :data:`TUNE_STUDIES`; ``settings`` carries the varied
    values (disk counts, prefetch granules, bitmap exclusion sets, or the
    weight reweightings mapping) and defaults to the study's stock sweep.
    ``spec`` defaults to the session's recommended fragmentation.
    """

    study: str
    spec: Optional[FragmentationSpec] = None
    settings: Any = None

    def __post_init__(self) -> None:
        if self.study not in TUNE_STUDIES:
            raise AdvisorError(
                f"unknown tuning study {self.study!r}; "
                f"known studies: {', '.join(TUNE_STUDIES)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": "tune", "study": self.study}
        if self.spec is not None:
            payload["spec"] = _spec_dict(self.spec)
        if self.settings is not None:
            payload["settings"] = self.settings
        return payload


@dataclass(frozen=True)
class SimulateRequest:
    """Monte-Carlo replay of the workload on an evaluated candidate.

    ``fragmentation`` is the label of the candidate to replay (the session's
    recommended one when omitted).
    """

    fragmentation: Optional[str] = None
    queries_per_class: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queries_per_class < 1:
            raise AdvisorError(
                f"queries_per_class must be positive, got {self.queries_per_class}"
            )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "simulate",
            "queries_per_class": self.queries_per_class,
            "seed": self.seed,
        }
        if self.fragmentation is not None:
            payload["fragmentation"] = self.fragmentation
        return payload


_REQUEST_KINDS = {
    "recommend": RecommendRequest,
    "evaluate_spec": EvaluateSpecRequest,
    "compare": CompareRequest,
    "tune": TuneRequest,
    "simulate": SimulateRequest,
}


def request_from_dict(raw: Mapping[str, Any]) -> Any:
    """Rebuild a typed request from its ``to_dict`` form (wire deserialization)."""
    kind = raw.get("kind")
    if kind not in _REQUEST_KINDS:
        raise AdvisorError(
            f"unknown request kind {kind!r}; "
            f"known kinds: {', '.join(sorted(_REQUEST_KINDS))}"
        )
    body = {key: value for key, value in raw.items() if key != "kind"}
    if "spec" in body:
        body["spec"] = _spec_from_dict(body["spec"])
    if "specs" in body:
        body["specs"] = tuple(_spec_from_dict(entry) for entry in body["specs"])
    if "baseline_spec" in body:
        body["baseline_spec"] = _spec_from_dict(body["baseline_spec"])
    if "bitmap_exclude" in body:
        body["bitmap_exclude"] = tuple(tuple(pair) for pair in body["bitmap_exclude"])
    return _REQUEST_KINDS[kind](**body)


__all__.append("request_from_dict")
