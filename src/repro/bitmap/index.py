"""Bitmap join index model.

Two index kinds are supported, mirroring the paper:

* **standard bitmaps** — one bitmap (one bit per fact row) per distinct value of
  the indexed attribute.  Evaluating a predicate selecting ``k`` values reads
  ``k`` bitmaps.  Storage grows linearly with the attribute cardinality, which
  is why WARLOCK restricts standard bitmaps to low-cardinality attributes.

* **(hierarchically) encoded bitmaps** — the attribute value is binary-encoded
  into ``ceil(log2(cardinality))`` bit slices; equality predicates read all
  slices regardless of how many values they select.  Storage grows
  logarithmically, which suits high-cardinality attributes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import BitmapError
from repro.schema import StarSchema

__all__ = ["BitmapType", "BitmapIndex"]


class BitmapType(enum.Enum):
    """Kind of bitmap join index."""

    STANDARD = "standard"
    ENCODED = "encoded"

    @property
    def label(self) -> str:
        """Human readable label for reports."""
        return {
            BitmapType.STANDARD: "standard",
            BitmapType.ENCODED: "hierarchically encoded",
        }[self]


def _encoded_bits(cardinality: int) -> int:
    """Bit slices needed to encode ``cardinality`` distinct values."""
    if cardinality <= 1:
        return 1
    return int(math.ceil(math.log2(cardinality)))


@dataclass(frozen=True)
class BitmapIndex:
    """A bitmap join index on one dimension attribute of the fact table.

    Parameters
    ----------
    dimension / level:
        The indexed dimension attribute.
    bitmap_type:
        Standard or encoded.
    cardinality:
        Number of distinct values of the attribute (taken from the schema by
        the scheme designer; stored here so the index is self-contained).
    """

    dimension: str
    level: str
    bitmap_type: BitmapType
    cardinality: int

    def __post_init__(self) -> None:
        if not self.dimension or not self.level:
            raise BitmapError("bitmap index needs dimension and level names")
        if not isinstance(self.bitmap_type, BitmapType):
            raise BitmapError(
                f"bitmap_type must be a BitmapType, got {self.bitmap_type!r}"
            )
        if self.cardinality <= 0:
            raise BitmapError(
                f"bitmap index on {self.dimension}.{self.level}: cardinality "
                f"must be positive, got {self.cardinality}"
            )

    # -- storage ---------------------------------------------------------------

    @property
    def storage_bits_per_row(self) -> int:
        """Bits stored per fact row by this index (all bitmaps / slices)."""
        if self.bitmap_type is BitmapType.STANDARD:
            return self.cardinality
        return _encoded_bits(self.cardinality)

    def storage_bytes(self, row_count: float) -> float:
        """Total storage of the index for ``row_count`` fact rows, in bytes."""
        if row_count < 0:
            raise BitmapError(f"row_count must be non-negative, got {row_count}")
        return self.storage_bits_per_row * row_count / 8.0

    def storage_pages(self, row_count: float, page_size_bytes: int) -> int:
        """Total pages of the index for ``row_count`` fact rows."""
        if page_size_bytes <= 0:
            raise BitmapError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        return int(math.ceil(self.storage_bytes(row_count) / page_size_bytes))

    # -- query-time reads --------------------------------------------------------

    def bits_read_per_row(self, value_count: int = 1) -> int:
        """Bits read per fact row to evaluate a predicate selecting ``value_count`` values."""
        if value_count <= 0:
            raise BitmapError(f"value_count must be positive, got {value_count}")
        if value_count > self.cardinality:
            raise BitmapError(
                f"predicate selects {value_count} values but "
                f"{self.dimension}.{self.level} only has {self.cardinality}"
            )
        if self.bitmap_type is BitmapType.STANDARD:
            return value_count
        return _encoded_bits(self.cardinality)

    def read_bytes(self, row_count: float, value_count: int = 1) -> float:
        """Bytes read to evaluate the predicate over ``row_count`` fact rows."""
        if row_count < 0:
            raise BitmapError(f"row_count must be non-negative, got {row_count}")
        return self.bits_read_per_row(value_count) * row_count / 8.0

    def read_pages(
        self, row_count: float, page_size_bytes: int, value_count: int = 1
    ) -> int:
        """Pages read to evaluate the predicate over ``row_count`` fact rows."""
        if page_size_bytes <= 0:
            raise BitmapError(
                f"page_size_bytes must be positive, got {page_size_bytes}"
            )
        read_bytes = self.read_bytes(row_count, value_count)
        if read_bytes == 0:
            return 0
        return int(math.ceil(read_bytes / page_size_bytes))

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def for_attribute(
        cls,
        schema: StarSchema,
        dimension: str,
        level: str,
        cardinality_threshold: int = 64,
    ) -> "BitmapIndex":
        """Build the index WARLOCK's heuristic would pick for an attribute.

        Standard bitmaps for attributes whose cardinality does not exceed
        ``cardinality_threshold``, encoded bitmaps otherwise.
        """
        if cardinality_threshold <= 0:
            raise BitmapError(
                f"cardinality_threshold must be positive, got {cardinality_threshold}"
            )
        cardinality = schema.level_cardinality(dimension, level)
        bitmap_type = (
            BitmapType.STANDARD
            if cardinality <= cardinality_threshold
            else BitmapType.ENCODED
        )
        return cls(
            dimension=dimension,
            level=level,
            bitmap_type=bitmap_type,
            cardinality=cardinality,
        )

    def describe(self) -> str:
        """Human readable one-liner for reports."""
        return (
            f"{self.dimension}.{self.level}: {self.bitmap_type.label} bitmap, "
            f"{self.cardinality:,} values, {self.storage_bits_per_row} bit(s)/row"
        )
