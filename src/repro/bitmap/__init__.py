"""Bitmap join index substrate (§2, §3.2 of the paper).

WARLOCK supports standard bitmaps and (hierarchically) encoded bitmaps working
as bitmap join indexes to avoid costly fact-table scans.  The advisor designs a
bitmap scheme per fragmentation: standard bitmaps on low-cardinality attributes
and encoded bitmaps on high-cardinality attributes.  Bitmap fragments follow
the fact-table fragmentation exactly so indicator bits stay aligned with fact
rows.
"""

from repro.bitmap.index import BitmapIndex, BitmapType
from repro.bitmap.scheme import BitmapScheme, design_bitmap_scheme

__all__ = [
    "BitmapType",
    "BitmapIndex",
    "BitmapScheme",
    "design_bitmap_scheme",
]
