"""Bitmap scheme design.

A *bitmap scheme* is the set of bitmap join indexes WARLOCK recommends for one
fragmentation candidate.  The heuristic follows the paper: create an index for
every dimension attribute the query mix restricts, using standard bitmaps for
low-cardinality attributes and (hierarchically) encoded bitmaps for
high-cardinality attributes.  The DBA may exclude individual indexes to limit
space requirements; the scheme object supports this interactively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import BitmapError
from repro.schema import StarSchema
from repro.workload import QueryMix
from repro.bitmap.index import BitmapIndex

__all__ = ["BitmapScheme", "design_bitmap_scheme"]

#: Default cardinality above which the heuristic switches from standard to
#: encoded bitmaps.  The value is deliberately conservative: a standard bitmap
#: index on a 64-value attribute stores 8 bytes per fact row.
DEFAULT_CARDINALITY_THRESHOLD = 64


@dataclass(frozen=True)
class BitmapScheme:
    """An immutable collection of bitmap indexes keyed by (dimension, level)."""

    indexes: Tuple[BitmapIndex, ...]

    def __init__(self, indexes: Sequence[BitmapIndex] = ()) -> None:
        indexes = tuple(indexes)
        keys = [(index.dimension, index.level) for index in indexes]
        if len(set(keys)) != len(keys):
            raise BitmapError(f"duplicate bitmap indexes in scheme: {keys}")
        object.__setattr__(self, "indexes", indexes)

    # -- access -----------------------------------------------------------------

    def __iter__(self) -> Iterator[BitmapIndex]:
        return iter(self.indexes)

    def __len__(self) -> int:
        return len(self.indexes)

    @property
    def is_empty(self) -> bool:
        """True when the scheme contains no index (all access is scan-based)."""
        return not self.indexes

    def index_for(self, dimension: str, level: str) -> Optional[BitmapIndex]:
        """The index on ``dimension.level``, or ``None`` when absent."""
        for index in self.indexes:
            if index.dimension == dimension and index.level == level:
                return index
        return None

    def indexes_on(self, dimension: str) -> Tuple[BitmapIndex, ...]:
        """All indexes on attributes of ``dimension``."""
        return tuple(index for index in self.indexes if index.dimension == dimension)

    def as_mapping(self) -> Dict[Tuple[str, str], BitmapIndex]:
        """Mapping view keyed by ``(dimension, level)``."""
        return {(index.dimension, index.level): index for index in self.indexes}

    # -- space accounting ----------------------------------------------------------

    @property
    def total_storage_bits_per_row(self) -> int:
        """Bits stored per fact row across all indexes."""
        return sum(index.storage_bits_per_row for index in self.indexes)

    def storage_bytes(self, row_count: float) -> float:
        """Total bitmap storage for ``row_count`` fact rows, in bytes."""
        return sum(index.storage_bytes(row_count) for index in self.indexes)

    def storage_pages(self, row_count: float, page_size_bytes: int) -> int:
        """Total bitmap storage for ``row_count`` fact rows, in pages."""
        return sum(
            index.storage_pages(row_count, page_size_bytes) for index in self.indexes
        )

    # -- interactive fine-tuning -----------------------------------------------------

    def without(self, *attributes: Tuple[str, str]) -> "BitmapScheme":
        """A copy of the scheme with the given ``(dimension, level)`` indexes removed.

        This models the paper's "the user may decide to exclude some of the
        suggested bitmap indices to limit space requirements".
        """
        keys = set(attributes)
        known = {(index.dimension, index.level) for index in self.indexes}
        unknown = keys - known
        if unknown:
            raise BitmapError(f"cannot exclude unknown bitmap indexes: {sorted(unknown)}")
        return BitmapScheme(
            [
                index
                for index in self.indexes
                if (index.dimension, index.level) not in keys
            ]
        )

    def restricted_to(self, dimensions: Iterable[str]) -> "BitmapScheme":
        """A copy keeping only indexes on the given dimensions."""
        wanted = set(dimensions)
        return BitmapScheme(
            [index for index in self.indexes if index.dimension in wanted]
        )

    # -- presentation -----------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line summary (one line per index)."""
        if not self.indexes:
            return "Bitmap scheme: (none)"
        lines = ["Bitmap scheme:"]
        lines.extend(f"  {index.describe()}" for index in self.indexes)
        lines.append(
            f"  total: {self.total_storage_bits_per_row} bit(s) per fact row"
        )
        return "\n".join(lines)


def design_bitmap_scheme(
    schema: StarSchema,
    workload: QueryMix,
    fact_table: Optional[str] = None,
    cardinality_threshold: int = DEFAULT_CARDINALITY_THRESHOLD,
    exclude: Sequence[Tuple[str, str]] = (),
) -> BitmapScheme:
    """Design the bitmap scheme for a schema/workload pair.

    One bitmap join index is proposed for every dimension attribute the query
    mix restricts (restricting access paths to attributes the workload actually
    uses keeps space bounded).  Attributes whose cardinality does not exceed
    ``cardinality_threshold`` get standard bitmaps; the others get encoded
    bitmaps.  ``exclude`` removes individual ``(dimension, level)`` attributes
    up front, mirroring the interactive exclusion the paper describes.
    """
    fact = schema.fact_table(fact_table)
    excluded = set(exclude)
    seen = set()
    indexes = []
    for query_class in workload:
        for restriction in query_class.restrictions:
            key = (restriction.dimension, restriction.level)
            if key in seen or key in excluded:
                continue
            if restriction.dimension not in fact.dimension_names:
                continue
            seen.add(key)
            indexes.append(
                BitmapIndex.for_attribute(
                    schema,
                    dimension=restriction.dimension,
                    level=restriction.level,
                    cardinality_threshold=cardinality_threshold,
                )
            )
    indexes.sort(key=lambda index: (index.dimension, index.level))
    return BitmapScheme(indexes)
