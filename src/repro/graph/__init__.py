"""Graph views of schemas and workloads.

Two graph structures support the advisor and the analysis layer:

* the **schema graph** — dimensions, hierarchy levels and fact tables as a
  directed graph (hierarchy edges point from coarser to finer levels, foreign
  key edges from fact tables to the dimensions they reference).  It powers
  structural queries (hierarchy paths, shared dimensions between fact tables)
  and sanity checks beyond what the flat validators cover.

* the **dimension affinity graph** — an undirected, weighted graph over the
  dimensions where an edge's weight is the workload share that restricts both
  endpoints in the same query class.  Dimensions that are frequently co-accessed
  are the natural joint fragmentation dimensions; the affinity graph therefore
  yields a cheap pre-selection of promising fragmentation dimension sets, which
  the advisor can use to cap the candidate space on very wide schemas.
"""

from repro.graph.schema_graph import (
    build_schema_graph,
    hierarchy_path,
    shared_dimensions,
)
from repro.graph.affinity import (
    build_affinity_graph,
    dimension_ranking,
    suggest_fragmentation_dimensions,
)

__all__ = [
    "build_schema_graph",
    "hierarchy_path",
    "shared_dimensions",
    "build_affinity_graph",
    "dimension_ranking",
    "suggest_fragmentation_dimensions",
]
