"""Directed graph view of a star schema.

Node naming convention:

* ``dim:<dimension>`` — one node per dimension,
* ``level:<dimension>.<level>`` — one node per hierarchy level,
* ``fact:<fact table>`` — one node per fact table.

Edge kinds (stored in the ``kind`` edge attribute):

* ``hierarchy`` — from a coarser level to the next finer level of the same
  dimension,
* ``has_level`` — from a dimension to each of its levels,
* ``references`` — from a fact table to each dimension it references.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.errors import SchemaError
from repro.schema import StarSchema

__all__ = ["build_schema_graph", "hierarchy_path", "shared_dimensions"]


def _dim_node(dimension: str) -> str:
    return f"dim:{dimension}"


def _level_node(dimension: str, level: str) -> str:
    return f"level:{dimension}.{level}"


def _fact_node(fact: str) -> str:
    return f"fact:{fact}"


def build_schema_graph(schema: StarSchema) -> nx.DiGraph:
    """Build the directed schema graph of ``schema``.

    Nodes carry ``kind`` (``dimension`` / ``level`` / ``fact``) plus the
    relevant metadata (cardinality for levels, row counts for facts), so the
    graph is self-contained for visualization or export.
    """
    graph = nx.DiGraph(name=schema.name)
    for dimension in schema.dimensions:
        graph.add_node(
            _dim_node(dimension.name),
            kind="dimension",
            dimension=dimension.name,
            levels=len(dimension.levels),
            skew_theta=dimension.skew.theta,
        )
        previous = None
        for level in dimension.levels:
            node = _level_node(dimension.name, level.name)
            graph.add_node(
                node,
                kind="level",
                dimension=dimension.name,
                level=level.name,
                cardinality=level.cardinality,
            )
            graph.add_edge(_dim_node(dimension.name), node, kind="has_level")
            if previous is not None:
                graph.add_edge(previous, node, kind="hierarchy")
            previous = node
    for fact in schema.fact_tables:
        graph.add_node(
            _fact_node(fact.name),
            kind="fact",
            fact=fact.name,
            row_count=fact.row_count,
            row_size_bytes=fact.row_size_bytes,
        )
        for dimension_name in fact.dimension_names:
            graph.add_edge(
                _fact_node(fact.name), _dim_node(dimension_name), kind="references"
            )
    return graph


def hierarchy_path(
    schema: StarSchema, dimension: str, from_level: str, to_level: str
) -> List[str]:
    """Level names on the hierarchy path from ``from_level`` down to ``to_level``.

    Both endpoints are included.  Raises :class:`SchemaError` when ``from_level``
    is not an ancestor (or the same level) of ``to_level``.
    """
    graph = build_schema_graph(schema)
    source = _level_node(dimension, from_level)
    target = _level_node(dimension, to_level)
    if source not in graph or target not in graph:
        raise SchemaError(
            f"unknown level in hierarchy_path: {dimension}.{from_level} / "
            f"{dimension}.{to_level}"
        )
    hierarchy = graph.edge_subgraph(
        [(u, v) for u, v, data in graph.edges(data=True) if data["kind"] == "hierarchy"]
    ).copy() if graph.edges else nx.DiGraph()
    if source == target:
        return [from_level]
    try:
        nodes = nx.shortest_path(hierarchy, source, target)
    except (nx.NetworkXNoPath, nx.NodeNotFound) as error:
        raise SchemaError(
            f"{dimension}.{from_level} is not an ancestor of {dimension}.{to_level}"
        ) from error
    return [graph.nodes[node]["level"] for node in nodes]


def shared_dimensions(schema: StarSchema, fact_a: str, fact_b: str) -> Tuple[str, ...]:
    """Dimensions referenced by both fact tables (conformed dimensions)."""
    table_a = schema.fact_table(fact_a)
    table_b = schema.fact_table(fact_b)
    shared = [name for name in table_a.dimension_names if name in table_b.dimension_names]
    return tuple(shared)
