"""Dimension affinity graph derived from a query workload.

Two dimensions are *affine* when the same query classes restrict both: queries
that restrict both ``time`` and ``product`` benefit from a fragmentation whose
attribute set includes both dimensions (the value combination pins down a small
set of fragments).  The affinity graph makes that structure explicit:

* node weight — workload share restricting the dimension at all,
* edge weight — workload share restricting both endpoint dimensions together.

:func:`suggest_fragmentation_dimensions` turns the graph into a cheap
pre-selection heuristic: greedily pick the dimension set with the highest
combined coverage of the workload.  It is *not* a replacement for the cost
model — the advisor still evaluates the surviving candidates analytically — but
it caps the candidate space for very wide schemas and gives the DBA an
at-a-glance explanation of why certain dimensions keep appearing in the top
fragmentations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import WorkloadError
from repro.schema import StarSchema
from repro.workload import QueryMix

__all__ = [
    "build_affinity_graph",
    "dimension_ranking",
    "suggest_fragmentation_dimensions",
]


def build_affinity_graph(schema: StarSchema, workload: QueryMix) -> nx.Graph:
    """Build the weighted dimension-affinity graph of ``workload`` over ``schema``."""
    workload.validate(schema)
    graph = nx.Graph(name=f"affinity:{schema.name}")
    for dimension in schema.fact_table().dimension_names:
        graph.add_node(dimension, weight=0.0)
    for query_class, share in workload.weighted_items():
        accessed = [d for d in query_class.accessed_dimensions if graph.has_node(d)]
        for dimension in accessed:
            graph.nodes[dimension]["weight"] += share
        for index, first in enumerate(accessed):
            for second in accessed[index + 1:]:
                if graph.has_edge(first, second):
                    graph[first][second]["weight"] += share
                else:
                    graph.add_edge(first, second, weight=share)
    return graph


def dimension_ranking(schema: StarSchema, workload: QueryMix) -> List[Tuple[str, float]]:
    """Dimensions ranked by the workload share that restricts them (descending)."""
    graph = build_affinity_graph(schema, workload)
    ranking = [(node, data["weight"]) for node, data in graph.nodes(data=True)]
    ranking.sort(key=lambda item: (-item[1], item[0]))
    return ranking


def suggest_fragmentation_dimensions(
    schema: StarSchema,
    workload: QueryMix,
    max_dimensions: int = 3,
    min_share_gain: float = 0.05,
) -> List[str]:
    """Greedy pre-selection of fragmentation dimensions.

    The objective maximized is the *restriction mass* of the selected set: the
    workload-share-weighted number of selected dimensions each query class
    restricts.  Every selected dimension a class restricts multiplies the
    class's fragment confinement under MDHF, so the marginal gain of adding a
    dimension is exactly the workload share that restricts it — dimensions that
    are co-accessed with already selected ones therefore keep their full gain,
    unlike a pure coverage objective.  Dimensions are added greedily while each
    addition contributes at least ``min_share_gain``.

    The result is the dimension set a DBA would short-list before letting the
    cost model pick the exact hierarchy levels.

    Parameters
    ----------
    schema, workload:
        Configuration to analyse.
    max_dimensions:
        Upper bound on the number of suggested dimensions.
    min_share_gain:
        Minimum workload share that must restrict a dimension for it to be
        added to the suggestion.
    """
    if max_dimensions < 1:
        raise WorkloadError(f"max_dimensions must be at least 1, got {max_dimensions}")
    if not 0 <= min_share_gain <= 1:
        raise WorkloadError(
            f"min_share_gain must be within [0, 1], got {min_share_gain}"
        )
    workload.validate(schema)

    # The marginal restriction-mass gain of a dimension is independent of the
    # already selected set: it is simply the workload share restricting it.
    ranking = dimension_ranking(schema, workload)
    suggestion: List[str] = []
    for dimension, share in ranking:
        if len(suggestion) >= max_dimensions:
            break
        if share < min_share_gain:
            break
        suggestion.append(dimension)
    return suggestion
