"""E6 — Throughput vs. response time trade-off and the leading-X% heuristic (§3.2).

Regenerates the scatter of all evaluated candidates (I/O cost vs. response
time) and shows how the choice of the leading fraction X changes the final top
list.  The paper's claim: the two goals are often contradicting — candidates
that decluster query hits achieve small response times at high I/O cost and
vice versa — and the I/O-cost-first heuristic finds good compromises.
"""

from __future__ import annotations

import numpy as np

from repro.core import rank_candidates

from conftest import print_table

FRACTIONS = (0.10, 0.25, 0.50, 1.00)


def run_e6(recommendation):
    """Rank the already evaluated candidates under several leading fractions."""
    candidates = list(recommendation.evaluated)
    return {
        fraction: rank_candidates(candidates, top_fraction=fraction, top_candidates=5)
        for fraction in FRACTIONS
    }


def test_e6_tradeoff_and_leading_fraction(benchmark, apb_recommendation):
    rankings = benchmark.pedantic(run_e6, args=(apb_recommendation,), iterations=1, rounds=3)
    candidates = list(apb_recommendation.evaluated)

    # Scatter of the candidate space.
    print_table(
        "E6a: I/O cost vs. response time of every evaluated candidate",
        ["fragmentation", "fragments", "I/O cost [ms]", "response [ms]"],
        [
            [c.label, f"{c.fragment_count:,}", f"{c.io_cost_ms:,.0f}", f"{c.response_time_ms:,.0f}"]
            for c in sorted(candidates, key=lambda c: c.io_cost_ms)
        ],
    )

    # Winner per leading fraction.
    print_table(
        "E6b: final winner vs. leading fraction X",
        ["X", "winner", "winner I/O cost [ms]", "winner response [ms]"],
        [
            [
                f"{fraction:.0%}",
                ranking[0].label,
                f"{ranking[0].io_cost_ms:,.0f}",
                f"{ranking[0].response_time_ms:,.0f}",
            ]
            for fraction, ranking in rankings.items()
        ],
    )

    io_costs = np.array([c.io_cost_ms for c in candidates])
    responses = np.array([c.response_time_ms for c in candidates])

    # The trade-off exists somewhere in the candidate space: there is at least
    # one pair of candidates where one has less I/O cost but a higher response
    # time than the other (otherwise the two goals would never contradict and
    # the two-phase heuristic would be pointless).
    conflict = any(
        (io_costs[i] < io_costs[j] and responses[i] > responses[j])
        or (io_costs[j] < io_costs[i] and responses[j] > responses[i])
        for i in range(len(candidates))
        for j in range(i + 1, len(candidates))
    )
    assert conflict

    # A larger X admits more candidates, so the winning response time can only improve.
    winner_response = [rankings[f][0].response_time_ms for f in FRACTIONS]
    assert all(a >= b - 1e-9 for a, b in zip(winner_response, winner_response[1:]))

    # A smaller X keeps the winner's I/O cost closer to the minimum.
    winner_io = {f: rankings[f][0].io_cost_ms for f in FRACTIONS}
    assert winner_io[0.10] <= winner_io[1.00] + 1e-9


def test_e6_declustering_correlation(benchmark, apb_recommendation):
    """More fragments means less response time but not less I/O work (rank correlation)."""

    def correlations():
        candidates = list(apb_recommendation.evaluated)
        fragments = np.array([c.fragment_count for c in candidates], dtype=float)
        responses = np.array([c.response_time_ms for c in candidates])
        io_costs = np.array([c.io_cost_ms for c in candidates])
        response_corr = np.corrcoef(np.log(fragments), responses)[0, 1]
        io_corr = np.corrcoef(np.log(fragments), io_costs)[0, 1]
        return response_corr, io_corr

    response_corr, io_corr = benchmark(correlations)
    print()
    print(
        f"E6c: correlation of log(#fragments) with response time {response_corr:+.2f} "
        f"and with I/O cost {io_corr:+.2f}"
    )
    # Declustering broadly helps response time (negative correlation) and does
    # not reduce total I/O work to the same degree.
    assert response_corr < 0.3
    assert io_corr > response_corr
