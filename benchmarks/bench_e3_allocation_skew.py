"""E3 — Allocation schemes under data skew (§2, §3.3).

Regenerates the disk-occupancy comparison between the logical round-robin and
the greedy size-based allocation across Zipf skew levels, plus the per-query
disk access balance, on the winning APB-1-style fragmentation.  The paper's
claim: round-robin suffices without skew; under notable skew the greedy scheme
keeps disk occupancy balanced.
"""

from __future__ import annotations

from repro import (
    FragmentationSpec,
    Warlock,
    apb1_schema,
    build_layout,
    design_bitmap_scheme,
    greedy_size_allocation,
    round_robin_allocation,
)
from repro.allocation import choose_allocation

from conftest import APB_SCALE, print_table

THETAS = (0.0, 0.5, 1.0)
SPEC = FragmentationSpec.of(("product", "group"), ("time", "month"))


def run_e3(apb_workload, apb_system):
    """Occupancy statistics of both schemes for each skew level."""
    rows = []
    for theta in THETAS:
        schema = apb1_schema(scale=APB_SCALE, skew={"product": theta})
        scheme = design_bitmap_scheme(schema, apb_workload)
        layout = build_layout(schema, SPEC, page_size_bytes=apb_system.page_size_bytes)
        round_robin = round_robin_allocation(layout, apb_system, scheme)
        greedy = greedy_size_allocation(layout, apb_system, scheme)
        chosen = choose_allocation(layout, apb_system, scheme)
        rows.append(
            {
                "theta": theta,
                "fragment_cv": layout.fragment_size_cv,
                "rr_cv": round_robin.occupancy_cv,
                "rr_imbalance": round_robin.occupancy_imbalance,
                "greedy_cv": greedy.occupancy_cv,
                "greedy_imbalance": greedy.occupancy_imbalance,
                "chosen": chosen.scheme,
            }
        )
    return rows


def test_e3_allocation_under_skew(benchmark, apb_workload, apb_system):
    rows = benchmark.pedantic(
        run_e3, args=(apb_workload, apb_system), iterations=1, rounds=1
    )

    print_table(
        "E3: disk occupancy balance, round-robin vs. greedy size-based "
        f"({SPEC.label}, 64 disks)",
        ["zipf theta", "fragment size CV", "RR occupancy CV", "RR max/mean",
         "greedy occupancy CV", "greedy max/mean", "WARLOCK picks"],
        [
            [
                f"{row['theta']:.1f}",
                f"{row['fragment_cv']:.3f}",
                f"{row['rr_cv']:.4f}",
                f"{row['rr_imbalance']:.3f}",
                f"{row['greedy_cv']:.4f}",
                f"{row['greedy_imbalance']:.3f}",
                row["chosen"],
            ]
            for row in rows
        ],
    )

    no_skew, mid_skew, heavy_skew = rows
    # Without skew, round-robin is already balanced and is the scheme chosen.
    assert no_skew["rr_cv"] < 0.01
    assert no_skew["chosen"] == "round_robin"
    # Skew makes fragment sizes (and thus round-robin occupancy) progressively
    # more uneven ...
    assert no_skew["fragment_cv"] < mid_skew["fragment_cv"] < heavy_skew["fragment_cv"]
    assert heavy_skew["rr_cv"] > no_skew["rr_cv"]
    # ... while the greedy scheme keeps occupancy balanced and is selected.
    assert heavy_skew["greedy_cv"] < heavy_skew["rr_cv"]
    assert heavy_skew["greedy_imbalance"] < heavy_skew["rr_imbalance"]
    assert heavy_skew["chosen"] == "greedy_size"
    assert heavy_skew["greedy_imbalance"] < 1.2


def test_e3_access_balance_follows_occupancy(benchmark, apb_workload, apb_system):
    """Per-query disk access distribution: greedy keeps the hottest disk close to the mean."""
    from repro.analysis import disk_access_profile
    from repro.core import AdvisorConfig

    schema = apb1_schema(scale=APB_SCALE, skew={"product": 1.0})
    advisor = Warlock(schema, apb_workload, apb_system, AdvisorConfig(max_fragments=100_000))
    candidate = benchmark.pedantic(advisor.evaluate_spec, args=(SPEC,), iterations=1, rounds=1)

    rows = []
    for query_class in apb_workload:
        profile = disk_access_profile(candidate, query_class, samples=5, seed=0)
        rows.append(
            [query_class.name, f"{profile.total_pages:,.0f}",
             f"{profile.disks_touched}/{profile.num_disks}", f"{profile.max_over_mean:.2f}"]
        )
    print_table(
        "E3b: disk access profile per query class (greedy allocation, theta = 1.0)",
        ["query class", "pages/query", "disks touched", "hottest/mean"],
        rows,
    )
    assert candidate.allocation.scheme == "greedy_size"
    assert candidate.allocation.occupancy_imbalance < 1.25
