"""E1 — Ranked list of fragmentation candidates (Fig. 1 prediction layer, §3.2).

Regenerates the advisor's headline output for the APB-1-style configuration:
the candidate space size, the number of candidates excluded by thresholds, and
the top fragmentations ranked by the twofold heuristic (overall I/O cost, then
response time among the leading X%).
"""

from __future__ import annotations

from repro import AdvisorConfig, Warlock

from conftest import print_table


def run_e1(apb_schema, apb_workload, apb_system, apb_config):
    """Run the full advisor pipeline and return the recommendation."""
    advisor = Warlock(apb_schema, apb_workload, apb_system, apb_config)
    return advisor.recommend()


def test_e1_candidate_ranking(benchmark, apb_schema, apb_workload, apb_system, apb_config):
    recommendation = benchmark.pedantic(
        run_e1,
        args=(apb_schema, apb_workload, apb_system, apb_config),
        iterations=1,
        rounds=1,
    )

    report = recommendation.exclusion_report
    print()
    print(
        f"E1: candidate space {report.considered} point fragmentations, "
        f"{report.excluded_count} excluded by thresholds, "
        f"{report.surviving_count} evaluated"
    )
    print_table(
        "E1: top fragmentation candidates (APB-1-style, 64 disks)",
        ["rank", "fragmentation", "fragments", "I/O cost [ms]", "response [ms]", "I/O rank", "allocation"],
        [
            [
                ranked.final_rank,
                ranked.candidate.label,
                f"{ranked.candidate.fragment_count:,}",
                f"{ranked.candidate.io_cost_ms:,.0f}",
                f"{ranked.candidate.response_time_ms:,.0f}",
                ranked.io_rank,
                ranked.candidate.allocation.scheme,
            ]
            for ranked in recommendation.ranked
        ],
    )

    # Shape assertions: thresholds prune most of the space, a ranked list of the
    # requested length exists, and it is ordered by response time.
    assert report.excluded_count > 0
    assert 1 <= len(recommendation.ranked) <= apb_config.top_candidates
    responses = [r.response_time_ms for r in recommendation.ranked]
    assert responses == sorted(responses)
    # The winner must use at least one dimension the workload restricts heavily.
    shares = apb_workload.dimension_access_shares()
    assert any(
        shares.get(attribute.dimension, 0) > 0.2
        for attribute in recommendation.best.spec.attributes
    )


def test_e1_two_phase_beats_pure_io_ranking_on_response_time(
    benchmark, apb_schema, apb_workload, apb_system
):
    """Ablation: the two-phase heuristic yields a better response time than
    picking the raw I/O-cost winner, at bounded extra I/O cost."""
    config = AdvisorConfig(top_candidates=10, max_fragments=100_000, top_fraction=0.25)
    advisor = Warlock(apb_schema, apb_workload, apb_system, config)
    recommendation = benchmark.pedantic(advisor.recommend, iterations=1, rounds=1)

    by_io = min(recommendation.evaluated, key=lambda c: c.io_cost_ms)
    winner = recommendation.best
    print()
    print(
        f"E1 ablation: I/O-cost winner {by_io.label} -> response "
        f"{by_io.response_time_ms:,.0f} ms; two-phase winner {winner.label} -> "
        f"response {winner.response_time_ms:,.0f} ms"
    )
    assert winner.response_time_ms <= by_io.response_time_ms
    # The leading-X% cut bounds how much extra I/O the response-time winner may cost.
    leading = sorted(c.io_cost_ms for c in recommendation.evaluated)
    cutoff_index = max(0, int(0.25 * len(leading)) - 1)
    assert winner.io_cost_ms <= leading[cutoff_index] * 1.0001
