"""Shared fixtures and helpers for the experiment benchmarks.

Every benchmark regenerates one experiment of EXPERIMENTS.md (E1..E10): it
computes the experiment's table/series, prints it (so the numbers land in the
benchmark log), and asserts the qualitative shape the paper claims.  The
`benchmark` fixture times the computation of the headline artefact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the benchmarks in smoke mode: smaller sweeps, shape "
        "assertions only, no hardware-dependent speedup thresholds "
        "(used by the CI benchmark smoke job)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the run is a CI smoke pass (see --quick)."""
    return request.config.getoption("--quick")

from repro import (
    AdvisorConfig,
    QueryMix,
    StarSchema,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
)

#: Scale factor used by the APB-1-style experiments.  0.05 keeps every
#: benchmark comfortably under a few seconds while preserving the relative
#: behaviour (the cost model is analytical, so only candidate counts matter).
APB_SCALE = 0.05

#: Number of disks of the reference configuration.
APB_DISKS = 64


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print an experiment table (delegates to the library's table renderer)."""
    from repro.analysis import format_table

    print()
    print(title)
    print(format_table(headers, [[str(cell) for cell in row] for row in rows]))


@pytest.fixture(scope="session")
def apb_schema() -> StarSchema:
    """The APB-1-style schema used by most experiments."""
    return apb1_schema(scale=APB_SCALE)


@pytest.fixture(scope="session")
def apb_skewed_schema() -> StarSchema:
    """The APB-1-style schema with a skewed product dimension (theta = 1.0)."""
    return apb1_schema(scale=APB_SCALE, skew={"product": 1.0})


@pytest.fixture(scope="session")
def apb_workload() -> QueryMix:
    """The APB-1-style weighted query mix."""
    return apb1_query_mix()


@pytest.fixture(scope="session")
def apb_system() -> SystemParameters:
    """The 64-disk Shared Disk reference configuration."""
    return SystemParameters(num_disks=APB_DISKS)


@pytest.fixture(scope="session")
def apb_config() -> AdvisorConfig:
    """Advisor configuration shared by the experiments."""
    return AdvisorConfig(top_candidates=10, max_fragments=100_000)


@pytest.fixture(scope="session")
def apb_recommendation(apb_schema, apb_workload, apb_system, apb_config):
    """The reference recommendation (E1) reused by downstream experiments."""
    advisor = Warlock(apb_schema, apb_workload, apb_system, apb_config)
    return advisor.recommend()
