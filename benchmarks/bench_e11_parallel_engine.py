"""E11 — The candidate-evaluation engine: vectorized, parallel, cached.

The advisor's hot path is the candidate sweep: every surviving fragmentation
is evaluated against every query class of the mix.  This experiment measures
the evaluation-engine pipeline in two parts:

**Part 1 — engine modes** on a large synthetic sweep (hundreds of candidates,
thousands of (candidate × query class) work units):

* **serial/uncached/scalar** — the seed-equivalent baseline: one inline loop,
  per-class scalar estimation, every access structure recomputed for both the
  prefetch run-length pass and the evaluation pass;
* **serial/cached** — the engine's memoized pipeline (``jobs=1``, vectorized);
* **parallel** — the process-pool backend (``jobs=4``) with columnar
  worker→parent result batches;
* **warm** — a repeated sweep against the already-populated cache, the shape
  every what-if tuning iteration takes.

**Part 2 — the vectorized class-axis sweep** on APB-1: the per-candidate cost
sweep (access structures, prefetch resolution, per-class costs) timed scalar
vs vectorized over all surviving candidates, on the stock 8-class APB-1 mix
and on a widened 40-class APB-1-style mix (the class count whose per-class
scalar passes the PR 1 profile flagged as the dominant serial cost).

**Part 3 — cross-process warm start** from the persistent on-disk cache
(``repro.engine.store``): four *separate* advisor processes share one cache
directory — a cold process that spills its sweep, a warm serial process, a
warm ``jobs=4`` process, and a process started against a deliberately
corrupted store.  Reported per process: wall time, entries loaded and the
disk-hit rate; the warm processes must answer >=90% of their probes from the
disk store and every process must produce the bit-identical recommendation
fingerprint.

**Part 4 — the session delta chain**: one ``AdvisorSession`` absorbs a
5-edit what-if chain against 5 cold advisors (see the test docstring).

**Part 5 — the candidate-axis batched sweep**: class-axis vs candidate-axis
kernels on the stock 8-class APB-1 mix (where the class-axis win broke even
at ~1.05x), plus the warm start from the columnar candidate store;
measurements are appended to ``BENCH_e11.json``.

**Part 7 — the HTTP service under concurrent load**: an
:class:`repro.service.AdvisorServer` holding two warm sessions serves a batch
of concurrent what-if requests (recommend + tune, 8 in quick mode, 16 in
full) issued from client threads over real sockets.  Reported: request
throughput and p50/p99 latency, plus one SSE-streamed request per warehouse
whose progress frames must terminate with ``completed == total``.  Every
HTTP result is asserted fingerprint-identical to an in-process
``AdvisorSession`` over the same inputs; measurements are appended to
``BENCH_e11.json``.

**Part 6 — the columnar two-phase ranking**: ``rank_candidates_columnar``
vs the scalar ``rank_candidates`` tail on a ~1000-candidate sweep.  The
scalar ranking re-derives the workload-weighted totals through per-candidate
property probes inside its sort keys; the columnar ranking accumulates one
total-cost vector off the metric cubes and runs both phases as stable
``np.lexsort`` passes.  Asserted bit-identical and >= 2x in full mode;
measurements are appended to ``BENCH_e11.json``.

**Part 8 — the distributed sweep fabric under injected faults**: the same
sweep over two fabric workers, one killed after its first lease
(``kill_after=1``), asserted fingerprint-identical to the local run — the
lease re-queue recovers the lost chunk and chunking-before-distribution
keeps the result independent of worker count; measurements are appended to
``BENCH_e11.json``.

Assertions: all modes return bit-identical recommendations
(:func:`repro.engine.recommendation_fingerprint`); the warm cache-aware sweep
is at least 2x faster than the serial baseline; the vectorized 40-class APB-1
sweep is at least 3x faster than the scalar sweep; and — on machines that
actually have the cores — ``jobs=4`` beats the serial baseline by at least 2x.
The multicore assertion is gated on CPU availability because a process pool
cannot beat physics on a single-core container; the measured numbers are
printed either way.  The cross-process warm start must answer the sweep from
disk (>=90% disk-hit rate) and, in full mode, beat its own cold process on
the in-process sweep time (asserted at 1.2x; measured ~1.5x — the cold sweep
is already vectorized and memoized, so the residual warm win is bounded by
spec enumeration and store unpickling).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from repro import (
    AdvisorConfig,
    AdvisorSession,
    DimensionRestriction,
    EngineOptions,
    QueryClass,
    QueryMix,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    synthetic_schema,
)
from repro.costmodel import (
    IOCostModel,
    compute_access_structure_batch,
    evaluate_workload_batch,
    resolve_prefetch_setting,
    resolve_prefetch_setting_batch,
)
from repro.engine import recommendation_fingerprint
from repro.fragmentation import build_layout
from repro.workload import ClassMatrix
from repro.workload.generator import random_query_mix

from conftest import print_table

#: The full sweep: 7 dimensions x 3 levels enumerate >1000 point
#: fragmentations of which well over 200 survive the thresholds; 40 query
#: classes give every candidate a substantial per-class cost sweep.
FULL = dict(dimensions=7, bottom=400, classes=40, max_fragments=30_000, min_candidates=200)
#: Smoke mode for CI: same pipeline, small sweep, no speedup thresholds.
QUICK = dict(dimensions=5, bottom=200, classes=8, max_fragments=20_000, min_candidates=20)

JOBS = 4

#: APB-1 configuration of the class-axis sweep experiment.
APB_SCALE = 0.2
APB_DISKS = 64
#: Widening factor: each APB-1 class is replicated with growing IN-list
#: widths, giving the 40-class APB-1-style mix of the headline measurement.
APB_WIDEN = 5


def _inputs(params):
    schema = synthetic_schema(
        num_dimensions=params["dimensions"],
        levels_per_dimension=3,
        bottom_cardinality=params["bottom"],
        fact_rows=30_000_000,
    )
    workload = random_query_mix(schema, num_classes=params["classes"], seed=11)
    system = SystemParameters(num_disks=64)
    config = AdvisorConfig(
        max_fragments=params["max_fragments"], max_fragmentation_dimensions=3
    )
    return schema, workload, system, config


def _timed_recommend(advisor):
    start = time.perf_counter()
    recommendation = advisor.recommend()
    return recommendation, time.perf_counter() - start


def test_e11_parallel_engine_speedup_and_parity(benchmark, quick):
    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)

    # Mode 1: seed-equivalent serial baseline (no cache, scalar inline loop).
    serial_advisor = Warlock(
        schema,
        workload,
        system,
        config,
        options=EngineOptions(jobs=1, cache=False, vectorize=False),
    )
    specs, report = serial_advisor.generate_specs()
    plan = serial_advisor.engine().plan(specs)
    serial_rec, serial_s = _timed_recommend(serial_advisor)

    # Mode 2: cache-aware vectorized engine, still serial.
    cached_advisor = Warlock(
        schema, workload, system, config, options=EngineOptions(jobs=1)
    )
    cached_rec, cached_s = _timed_recommend(cached_advisor)
    cold_stats = cached_advisor.cache.stats

    # Mode 3: process-pool backend (timed via pytest-benchmark as the headline).
    parallel_advisor = Warlock(
        schema, workload, system, config, options=EngineOptions(jobs=JOBS)
    )
    parallel_rec = benchmark.pedantic(
        parallel_advisor.recommend, iterations=1, rounds=1
    )
    parallel_rec2, parallel_s = _timed_recommend(
        Warlock(schema, workload, system, config, options=EngineOptions(jobs=JOBS))
    )

    # Mode 4: warm cache (the tuning-iteration shape).  A *fresh* advisor
    # shares the cache — a repeated recommend() on the same advisor would be
    # answered O(1) from the session memo without probing the cache at all.
    cached_advisor.cache.reset_stats()
    warm_rec, warm_s = _timed_recommend(
        Warlock(schema, workload, system, config, cache=cached_advisor.cache)
    )
    warm_stats = cached_advisor.cache.stats

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print()
    print(f"E11: {plan.describe()}")
    print(
        f"E11: candidate space {report.considered} considered, "
        f"{report.surviving_count} evaluated; {cpus} CPU(s) available"
    )
    print_table(
        f"E11: engine modes on the {plan.num_candidates}-candidate sweep",
        ["mode", "time [s]", "speedup vs serial", "notes"],
        [
            ["serial (uncached, scalar)", f"{serial_s:.3f}", "1.00x", "seed-equivalent loop"],
            ["engine jobs=1 (cached)", f"{cached_s:.3f}", f"{serial_s / cached_s:.2f}x",
             cold_stats.describe()],
            [f"engine jobs={JOBS}", f"{parallel_s:.3f}", f"{serial_s / parallel_s:.2f}x",
             "process pool, columnar result batches"],
            ["engine warm cache", f"{warm_s:.3f}", f"{serial_s / warm_s:.2f}x",
             warm_stats.describe()],
        ],
    )

    # -- parity: every mode returns the bit-identical recommendation ------------
    fingerprints = {
        recommendation_fingerprint(rec)
        for rec in (serial_rec, cached_rec, parallel_rec, parallel_rec2, warm_rec)
    }
    assert len(fingerprints) == 1, "engine modes disagree on the recommendation"

    # -- sweep size: the experiment must exercise a real candidate space --------
    assert plan.num_candidates >= params["min_candidates"]
    assert plan.num_units >= params["min_candidates"] * params["classes"]

    # -- cache effectiveness ----------------------------------------------------
    # Cold, vectorized: one structure *batch* per candidate covers all classes
    # (the run-length and evaluation passes share it within the evaluation).
    assert cold_stats.structure_misses == plan.num_candidates
    # Warm: the whole sweep is answered from candidate-level entries.
    assert warm_stats.candidate_hits == plan.num_candidates
    assert warm_stats.hit_rate >= 0.99

    if quick:
        return

    # -- speedups ---------------------------------------------------------------
    # The memoized warm sweep must beat the seed-equivalent serial loop >= 2x
    # (in practice it is an order of magnitude).
    assert serial_s / warm_s >= 2.0, (
        f"warm cache sweep only {serial_s / warm_s:.2f}x over serial "
        f"({warm_s:.3f}s vs {serial_s:.3f}s)"
    )
    # The process pool must beat the serial loop >= 2x wherever the hardware
    # can run 4 workers; on fewer cores the pool cannot win by construction,
    # so the measured ratio above is reported without this assertion.
    if cpus >= JOBS:
        assert serial_s / parallel_s >= 2.0, (
            f"jobs={JOBS} only {serial_s / parallel_s:.2f}x over serial "
            f"({parallel_s:.3f}s vs {serial_s:.3f}s) on {cpus} CPUs"
        )


# ---------------------------------------------------------------------------
# Part 2: the vectorized class-axis sweep on APB-1
# ---------------------------------------------------------------------------

def _widened_apb1_mix(schema, widen: int) -> QueryMix:
    """The APB-1 mix replicated with growing IN-list widths (8 x widen classes)."""
    classes = []
    for repetition in range(widen):
        for query_class in apb1_query_mix():
            restrictions = [
                DimensionRestriction(
                    restriction.dimension,
                    restriction.level,
                    min(
                        schema.level_cardinality(
                            restriction.dimension, restriction.level
                        ),
                        1 + repetition * 2,
                    ),
                )
                for restriction in query_class.restrictions
            ]
            classes.append(
                QueryClass(
                    name=f"{query_class.name}-w{repetition}",
                    restrictions=restrictions,
                    weight=query_class.weight,
                    fact_table=query_class.fact_table,
                )
            )
    return QueryMix(classes)


def _time_class_axis_sweep(layouts, workload, scheme, system, vectorize, rounds=5):
    """Best-of-N wall time of the uncached per-candidate cost sweep.

    This is exactly the work the tentpole vectorized: access-structure
    derivation, prefetch resolution and the per-class cost model for every
    candidate (layout materialization and allocation are identical in both
    paths and excluded).
    """
    model = IOCostModel(system, validate_queries=False)
    matrix = ClassMatrix.compile(layouts[0].schema, workload, scheme)
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        if vectorize:
            for layout in layouts:
                structures = compute_access_structure_batch(layout, matrix)
                prefetch = resolve_prefetch_setting_batch(structures, matrix, system)
                evaluate_workload_batch(layout, structures, matrix, system, prefetch)
        else:
            for layout in layouts:
                prefetch = resolve_prefetch_setting(
                    layout, workload, scheme, system, validate_queries=False
                )
                model.evaluate(layout, workload, scheme, prefetch)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_e11_vectorized_class_axis_sweep(quick):
    """Scalar vs vectorized serial cost sweep on APB-1 (8 and 40 classes)."""
    schema = apb1_schema(scale=0.05 if quick else APB_SCALE)
    system = SystemParameters(num_disks=APB_DISKS)
    config = AdvisorConfig(max_fragments=100_000)
    widen = 1 if quick else APB_WIDEN

    stock_mix = apb1_query_mix()
    wide_mix = _widened_apb1_mix(schema, widen)

    advisor = Warlock(schema, stock_mix, system, config)
    specs, _ = advisor.generate_specs()
    scheme = advisor.design_bitmaps()
    layouts = [
        build_layout(
            schema,
            spec,
            page_size_bytes=system.page_size_bytes,
            max_fragments=config.max_fragments,
        )
        for spec in specs
    ]

    rows = []
    ratios = {}
    for label, workload in (
        (f"stock mix ({len(stock_mix)} classes)", stock_mix),
        (f"widened mix ({len(wide_mix)} classes)", wide_mix),
    ):
        mix_scheme = Warlock(schema, workload, system, config).design_bitmaps()
        scalar_s = _time_class_axis_sweep(layouts, workload, mix_scheme, system, False)
        vector_s = _time_class_axis_sweep(layouts, workload, mix_scheme, system, True)
        ratios[label] = scalar_s / vector_s
        rows.append(
            [
                label,
                f"{scalar_s * 1000:.1f}",
                f"{vector_s * 1000:.1f}",
                f"{scalar_s / vector_s:.2f}x",
            ]
        )
    print()
    print_table(
        f"E11: class-axis cost sweep on APB-1 ({len(layouts)} candidates, serial, uncached)",
        ["workload", "scalar [ms]", "vectorized [ms]", "speedup"],
        rows,
    )

    # -- parity: the vectorized advisor returns the bit-identical result --------
    scalar_rec = Warlock(
        schema,
        wide_mix,
        system,
        config,
        options=EngineOptions(cache=False, vectorize=False),
    ).recommend()
    vector_rec = Warlock(
        schema, wide_mix, system, config, options=EngineOptions(cache=False)
    ).recommend()
    assert recommendation_fingerprint(scalar_rec) == recommendation_fingerprint(
        vector_rec
    )

    if quick:
        return

    # The vectorized win grows with the class axis; on the 40-class APB-1
    # sweep it must clear 3x (measured ~3.5x on the reference container).
    wide_label = f"widened mix ({len(wide_mix)} classes)"
    assert ratios[wide_label] >= 3.0, (
        f"vectorized class-axis sweep only {ratios[wide_label]:.2f}x over "
        f"scalar on the 40-class APB-1 mix"
    )


# ---------------------------------------------------------------------------
# Part 3: cross-process warm start from the persistent on-disk cache
# ---------------------------------------------------------------------------

#: Runs one advisor in a *separate process* against a shared cache directory
#: and prints its fingerprint, in-process sweep time and disk-hit stats.
_CROSS_PROCESS_SNIPPET = """\
import json, sys, time

from repro import AdvisorConfig, SystemParameters, Warlock, synthetic_schema
from repro.engine import recommendation_fingerprint
from repro.workload.generator import random_query_mix

params = json.loads(sys.argv[1])
schema = synthetic_schema(
    num_dimensions=params["dimensions"],
    levels_per_dimension=3,
    bottom_cardinality=params["bottom"],
    fact_rows=30_000_000,
)
workload = random_query_mix(schema, num_classes=params["classes"], seed=11)
system = SystemParameters(num_disks=64)
config = AdvisorConfig(
    max_fragments=params["max_fragments"], max_fragmentation_dimensions=3
)
from repro import EngineOptions
advisor = Warlock(
    schema, workload, system, config,
    options=EngineOptions(jobs=params["jobs"], cache_dir=params["cache_dir"]),
)
start = time.perf_counter()
recommendation = advisor.recommend()
elapsed = time.perf_counter() - start
advisor.persist_cache()
stats = advisor.cache.stats
print(json.dumps({
    "fingerprint": recommendation_fingerprint(recommendation),
    "elapsed": elapsed,
    "loaded": advisor.cache.loaded_from_disk,
    "disk_hits": stats.disk_hits,
    "lookups": stats.lookups,
    "disk_hit_rate": stats.disk_hit_rate,
}))
"""


def _run_cross_process(params, cache_dir, jobs):
    """One advisor process sharing ``cache_dir``; returns its report dict."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    payload = dict(params)
    payload["cache_dir"] = str(cache_dir)
    payload["jobs"] = jobs
    result = subprocess.run(
        [sys.executable, "-c", _CROSS_PROCESS_SNIPPET, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_e11_cross_process_persistent_cache(quick, tmp_path):
    """Separate processes share the sweep through the on-disk cache store."""
    params = QUICK if quick else FULL
    cache_dir = tmp_path / "warlock-cache"

    cold = _run_cross_process(params, cache_dir, jobs=1)
    warm = _run_cross_process(params, cache_dir, jobs=1)
    warm_parallel = _run_cross_process(params, cache_dir, jobs=JOBS)

    # Corrupt every store file in place: the next process must fall back to a
    # cold evaluation with the identical result (and rewrite the store).
    (cache_dir / "entries.sqlite").write_bytes(b"this is not a database")
    (cache_dir / "structures.npz").write_bytes(b"\x00garbage")
    (cache_dir / "candidates.npz").write_bytes(b"\x00garbage")
    corrupted = _run_cross_process(params, cache_dir, jobs=1)

    rows = []
    for label, report in (
        ("cold process", cold),
        ("warm process", warm),
        (f"warm process jobs={JOBS}", warm_parallel),
        ("corrupted-store process", corrupted),
    ):
        rows.append(
            [
                label,
                f"{report['elapsed']:.3f}",
                f"{report['loaded']}",
                f"{report['disk_hits']}/{report['lookups']}",
                f"{report['disk_hit_rate']:.1%}",
            ]
        )
    print()
    print_table(
        "E11: cross-process warm start from the persistent cache",
        ["process", "sweep [s]", "entries loaded", "disk hits", "disk-hit rate"],
        rows,
    )

    # -- parity: the store can speed runs up, never change them ---------------
    fingerprints = {
        report["fingerprint"] for report in (cold, warm, warm_parallel, corrupted)
    }
    assert len(fingerprints) == 1, "cross-process runs disagree on the recommendation"

    # -- the warm processes answer the sweep from the disk store --------------
    assert cold["disk_hits"] == 0
    assert warm["loaded"] > 0
    assert warm["disk_hit_rate"] >= 0.9
    assert warm_parallel["disk_hit_rate"] >= 0.9
    # The corrupted store is never trusted: nothing loads, everything recomputes.
    assert corrupted["loaded"] == 0 and corrupted["disk_hits"] == 0

    if quick:
        return

    # Warm-starting across processes must beat the cold sweep.  The margin is
    # moderate by construction — the cold sweep is already vectorized and
    # memoized, and the warm run still pays spec enumeration plus unpickling —
    # measured ~1.5x on the reference container, asserted at 1.2x to stay
    # robust across CI hardware.
    assert cold["elapsed"] / warm["elapsed"] >= 1.2, (
        f"cross-process warm start only {cold['elapsed'] / warm['elapsed']:.2f}x "
        f"over cold ({warm['elapsed']:.3f}s vs {cold['elapsed']:.3f}s)"
    )


def test_e11_tuning_reuse_via_shared_cache(quick):
    """What-if studies sharing the advisor's cache reuse the sweep's work."""
    from repro.tuning import disk_count_study, workload_weight_study

    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)
    advisor = Warlock(schema, workload, system, config)
    recommendation = advisor.recommend()
    spec = recommendation.best.spec

    advisor.cache.reset_stats()
    start = time.perf_counter()
    disk_count_study(
        schema, workload, system, spec, disk_counts=(16, 32, 64), config=config,
        cache=advisor.cache,
    )
    first_class = next(iter(workload)).name
    workload_weight_study(
        schema, workload, system, spec,
        reweightings={"drill-heavy": {first_class: 10.0}},
        config=config,
        cache=advisor.cache,
    )
    elapsed = time.perf_counter() - start
    stats = advisor.cache.stats
    print()
    print(f"E11: tuning studies over the recommended spec took {elapsed:.3f}s")
    print(f"E11: {stats.describe()}")
    # The disk-count study varies only the system: every structure batch of
    # the studied spec is reused from the recommend() sweep.
    assert stats.structure_hits > 0
    assert stats.hit_rate > 0.5


# ---------------------------------------------------------------------------
# Part 4: the session delta chain (one session, 5 what-if edits)
# ---------------------------------------------------------------------------

def test_e11_session_delta_chain(quick):
    """One AdvisorSession absorbs a 5-edit what-if chain vs 5 cold advisors.

    The paper's interactive session shape: an administrator varies disks,
    architecture and mix weights against one warehouse — including toggling
    an edit back to compare.  Each edit derives a session with
    ``with_delta`` (sharing the evaluation cache); every recommendation is
    asserted bit-identical to a fresh advisor built from the edited inputs,
    per-edit cache hit rates are reported, and in full mode the warm chain
    must beat the 5 cold advisors by at least 2x wall-clock (structure
    entries carry system/mix edits; reverted edits are answered entirely
    from candidate entries).
    """
    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)
    first_query = next(iter(workload))

    edits = [
        ("disks 64 -> 32", dict(disks=32)),
        ("architecture -> SE", dict(architecture="shared_everything")),
        ("revert system", dict(disks=64, architecture="shared_disk")),
        (f"{first_query.name} weight x10", dict(mix_weights={first_query.name: 10.0})),
        ("revert mix", dict(mix_weights={first_query.name: first_query.weight})),
    ]

    session = AdvisorSession(schema, workload, system, config)
    base, base_s = (lambda t0=time.perf_counter(): (session.recommend(), time.perf_counter() - t0))()

    rows = []
    warm_times = []
    fingerprints = []
    current = session
    for label, edit in edits:
        current = current.with_delta(**edit)
        session.cache.reset_stats()
        start = time.perf_counter()
        result = current.recommend()
        elapsed = time.perf_counter() - start
        warm_times.append(elapsed)
        fingerprints.append(result.fingerprint)
        stats = session.cache.stats
        rows.append(
            [label, f"{elapsed:.3f}", f"{stats.hit_rate:.1%}",
             f"{stats.candidate_hits}", f"{stats.structure_hits}"]
        )

    # The cold side: one fresh advisor (private cache) per edited input set.
    cold_times = []
    cold_schema, cold_workload, cold_system = schema, workload, system
    for index, (_, edit) in enumerate(edits):
        if "disks" in edit:
            cold_system = cold_system.with_disks(edit["disks"])
        if "architecture" in edit:
            cold_system = cold_system.with_architecture(edit["architecture"])
        if "mix_weights" in edit:
            cold_workload = cold_workload.reweighted(edit["mix_weights"])
        advisor = Warlock(cold_schema, cold_workload, cold_system, config)
        recommendation, elapsed = _timed_recommend(advisor)
        cold_times.append(elapsed)
        # -- parity: the delta chain can never change a number --------------
        assert recommendation_fingerprint(recommendation) == fingerprints[index], (
            f"delta chain diverged from a fresh advisor on edit {index}"
        )

    warm_total, cold_total = sum(warm_times), sum(cold_times)
    print()
    print(f"E11: session base sweep {base_s:.3f}s "
          f"({len(base.recommendation.evaluated)} candidates)")
    print_table(
        "E11: what-if delta chain (one session, shared cache)",
        ["edit", "warm [s]", "hit rate", "candidate hits", "structure hits"],
        rows,
    )
    print(
        f"E11: delta chain warm {warm_total:.3f}s vs 5 cold advisors "
        f"{cold_total:.3f}s -> {cold_total / warm_total:.2f}x"
    )

    # The reverted edits are answered from whole-candidate entries: nearly
    # free compared to their cold counterparts.
    assert warm_times[2] < cold_times[2]
    if quick:
        return
    assert cold_total / warm_total >= 2.0, (
        f"session delta chain only {cold_total / warm_total:.2f}x over cold "
        f"({warm_total:.3f}s vs {cold_total:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Part 5: the candidate-axis batched sweep + columnar warm start
# ---------------------------------------------------------------------------

#: Trajectory file: every part-5/part-6 run appends its measurements, so the
#: candidate-axis and ranking speedups can be tracked across commits/containers.
BENCH_TRAJECTORY = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_e11.json")


def _time_candidate_axis_sweep(layouts, matrix, system, candidate_axis, rounds=5):
    """Best-of-N wall time of the uncached cost sweep, kernels only.

    Exactly the work the candidate-axis tentpole batches: access-structure
    derivation, prefetch resolution and the cost model.  The class-axis
    variant runs one python pass per candidate; the candidate-axis variant
    stacks each axis-structure group into one (candidate × class) batch.
    """
    from repro.costmodel import (
        AccessStructureBatch2D,
        compute_access_structure_batch_candidates,
        evaluate_workload_batch_candidates,
        resolve_prefetch_settings_batch_candidates,
    )

    groups = {}
    for layout in layouts:
        groups.setdefault(layout.spec.axis_structure, []).append(layout)
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        if candidate_axis:
            # The engine's strategy: structures per axis-structure group (the
            # unit of uniform control flow), then ONE whole-sweep stack for
            # prefetch resolution and the cost model (purely per-candidate
            # elementwise, so groups concatenate freely).
            stacked_layouts = []
            group_batches = []
            for group in groups.values():
                stacked_layouts.extend(group)
                group_batches.append(
                    compute_access_structure_batch_candidates(group, matrix)
                )
            structures = AccessStructureBatch2D.concat(group_batches)
            prefetches = resolve_prefetch_settings_batch_candidates(
                structures, matrix, system
            )
            evaluate_workload_batch_candidates(
                stacked_layouts, structures, matrix, system, prefetches
            )
        else:
            for layout in layouts:
                structures = compute_access_structure_batch(layout, matrix)
                prefetch = resolve_prefetch_setting_batch(structures, matrix, system)
                evaluate_workload_batch(layout, structures, matrix, system, prefetch)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, len(groups)


def _append_trajectory(record):
    """Append one measurement record to the BENCH_e11.json trajectory file."""
    payload = {"experiment": "e11-part5-candidate-axis", "runs": []}
    try:
        with open(BENCH_TRAJECTORY) as handle:
            existing = json.load(handle)
        if isinstance(existing.get("runs"), list):
            payload = existing
    except Exception:
        pass
    payload["runs"].append(record)
    with open(BENCH_TRAJECTORY, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_e11_candidate_axis_sweep(quick, tmp_path):
    """Part 5: candidate-axis batching where the class-axis win broke even.

    PR 2's class-axis vectorization measured only ~1.05x on the stock 8-class
    APB-1 mix — the per-candidate numpy dispatch overhead ate the narrow
    class axis.  Batching whole axis-structure groups over the candidate axis
    amortizes that overhead: asserted >= 2x over the class-axis path on the
    same sweep (full mode).  The second half measures the columnar
    candidate store: a fresh advisor warm-starting from disk must beat the
    cold run (>= 1.3x full mode) with >= 90% disk hits, since it no longer
    unpickles one candidate blob per spec nor re-derives the exclusion
    thresholds.  All paths are asserted fingerprint-identical.
    """
    schema = apb1_schema(scale=0.05 if quick else APB_SCALE)
    system = SystemParameters(num_disks=APB_DISKS)
    config = AdvisorConfig(max_fragments=100_000)
    mix = apb1_query_mix()

    advisor = Warlock(schema, mix, system, config)
    specs, _ = advisor.generate_specs()
    scheme = advisor.design_bitmaps()
    matrix = ClassMatrix.compile(schema, mix, scheme)
    layouts = [
        build_layout(
            schema,
            spec,
            page_size_bytes=system.page_size_bytes,
            max_fragments=config.max_fragments,
        )
        for spec in specs
    ]

    class_axis_s, _ = _time_candidate_axis_sweep(layouts, matrix, system, False)
    candidate_axis_s, num_groups = _time_candidate_axis_sweep(
        layouts, matrix, system, True
    )
    kernel_ratio = class_axis_s / candidate_axis_s

    # -- columnar warm start: cold advisor spills, fresh advisor loads ---------
    store = tmp_path / "columnar-store"
    cold_advisor = Warlock(
        schema, mix, system, config, options=EngineOptions(cache_dir=str(store))
    )
    cold_rec, cold_s = _timed_recommend(cold_advisor)
    warm_advisor = Warlock(
        schema, mix, system, config, options=EngineOptions(cache_dir=str(store))
    )
    warm_rec, warm_s = _timed_recommend(warm_advisor)
    warm_ratio = cold_s / warm_s
    warm_stats = warm_advisor.cache.stats

    # -- mode parity on this exact sweep ---------------------------------------
    fingerprints = {
        recommendation_fingerprint(
            Warlock(
                schema, mix, system, config,
                options=EngineOptions(cache=False, vectorize=mode),
            ).recommend()
        )
        for mode in ("none", "classes", "candidates")
    }
    fingerprints.add(recommendation_fingerprint(cold_rec))
    fingerprints.add(recommendation_fingerprint(warm_rec))
    assert len(fingerprints) == 1, "candidate-axis modes disagree"

    print()
    print_table(
        f"E11: candidate-axis cost sweep on APB-1 "
        f"({len(layouts)} candidates in {num_groups} axis groups, "
        f"{matrix.num_classes} classes, serial, uncached)",
        ["path", "time [ms]", "speedup"],
        [
            ["class-axis (per-candidate)", f"{class_axis_s * 1000:.1f}", "1.00x"],
            ["candidate-axis (stacked)", f"{candidate_axis_s * 1000:.1f}",
             f"{kernel_ratio:.2f}x"],
        ],
    )
    print_table(
        "E11: warm start from the columnar candidate store",
        ["run", "time [s]", "disk hits", "ratio"],
        [
            ["cold (spills store)", f"{cold_s:.3f}", "0", "1.00x"],
            ["warm (fresh advisor)", f"{warm_s:.3f}",
             f"{warm_stats.disk_hits}/{warm_stats.lookups}",
             f"{warm_ratio:.2f}x"],
        ],
    )

    _append_trajectory(
        {
            "quick": quick,
            "candidates": len(layouts),
            "axis_groups": num_groups,
            "classes": matrix.num_classes,
            "class_axis_ms": round(class_axis_s * 1000, 3),
            "candidate_axis_ms": round(candidate_axis_s * 1000, 3),
            "kernel_speedup": round(kernel_ratio, 3),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_from_disk_ratio": round(warm_ratio, 3),
            "warm_disk_hit_rate": round(warm_stats.disk_hit_rate, 4),
        }
    )

    assert warm_stats.disk_hit_rate >= 0.9
    if quick:
        return
    # The candidate-axis batch must clear 2x over the class-axis path on the
    # 8-class sweep where PR 2 broke even (measured ~2.5x on the reference
    # container).
    assert kernel_ratio >= 2.0, (
        f"candidate-axis sweep only {kernel_ratio:.2f}x over class-axis "
        f"({candidate_axis_s * 1000:.1f}ms vs {class_axis_s * 1000:.1f}ms)"
    )
    # The columnar store + persisted exclusion report must push the
    # warm-from-disk ratio past the format-1 level (asserted conservatively).
    assert warm_ratio >= 1.3, (
        f"columnar warm start only {warm_ratio:.2f}x over cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Part 6: the columnar two-phase ranking
# ---------------------------------------------------------------------------

#: Size of the ranking sweep: the full sweep's evaluated candidates are tiled
#: to this count, the shape of a wide multi-warehouse what-if comparison.
RANK_SWEEP = 1000


def _fresh_candidates(evaluated, target):
    """Tile the sweep to ``target`` *distinct* candidate objects.

    Every slot gets its own candidate and evaluation wrapper (sharing the
    underlying metric cubes, so no data is copied): the totals of each
    candidate are genuinely unprobed, which is the shape of a sweep fresh
    from the batched evaluation, where the ranking is the first consumer of
    the workload-weighted totals.  Tiling the *objects* instead would let the
    scalar path answer duplicate slots from the per-evaluation total caches
    and measure a dict lookup, not the tail it actually pays.
    """
    import dataclasses

    from repro.costmodel import WorkloadEvaluation

    repeats = -(-target // len(evaluated))
    tiled = (evaluated * repeats)[:target]
    return [
        candidate
        if candidate.evaluation.columns is None
        else dataclasses.replace(
            candidate,
            evaluation=WorkloadEvaluation(
                candidate.evaluation.layout,
                candidate.evaluation.prefetch,
                columns=candidate.evaluation.columns,
            ),
        )
        for candidate in tiled
    ]


def _time_ranking(rank, evaluated, target, rounds=5):
    """Best-of-N wall time of one full two-phase ranking pass.

    The candidate list is rebuilt outside the timed window each round so the
    totals stay cold: round 1 would otherwise warm the per-evaluation caches
    and turn the later rounds of the scalar path into cache lookups.
    """
    best = None
    for _ in range(rounds):
        candidates = _fresh_candidates(evaluated, target)
        start = time.perf_counter()
        rank(candidates, top_fraction=0.25, top_candidates=10)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_e11_columnar_ranking(quick):
    """Part 6: the vectorized ranking vs the scalar tail of the sweep.

    After the batched evaluation lands, the recommend() tail is the two-phase
    ranking: the scalar path re-derives every candidate's workload-weighted
    I/O cost and response time through property probes inside its sort keys
    (one ``sum(w * v)`` per probe over the whole class axis), while the
    columnar path accumulates one total-cost vector straight off the metric
    cubes and sorts with two stable ``np.lexsort`` passes.  Both must return
    the identical top list; full mode asserts the columnar ranking >= 2x on
    the tiled ~1000-candidate sweep.
    """
    from repro.core import rank_candidates, rank_candidates_columnar

    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)
    evaluated = list(Warlock(schema, workload, system, config).recommend().evaluated)
    target = len(evaluated) if quick else max(RANK_SWEEP, len(evaluated))

    scalar_s = _time_ranking(rank_candidates, evaluated, target)
    columnar_s = _time_ranking(rank_candidates_columnar, evaluated, target)
    ratio = scalar_s / columnar_s

    # -- parity on one shared candidate list ------------------------------------
    candidates = _fresh_candidates(evaluated, target)
    scalar_ranked = rank_candidates(candidates, top_fraction=0.25, top_candidates=10)
    columnar_ranked = rank_candidates_columnar(
        candidates, top_fraction=0.25, top_candidates=10
    )

    print()
    print_table(
        f"E11: two-phase ranking on {len(candidates)} candidates "
        f"({params['classes']} classes)",
        ["path", "time [ms]", "speedup"],
        [
            ["scalar (property probes)", f"{scalar_s * 1000:.2f}", "1.00x"],
            ["columnar (lexsort)", f"{columnar_s * 1000:.2f}", f"{ratio:.2f}x"],
        ],
    )

    # -- parity: the columnar ranking is the scalar ranking, faster -------------
    assert len(scalar_ranked) == len(columnar_ranked)
    for left, right in zip(scalar_ranked, columnar_ranked):
        assert left.candidate is right.candidate
        assert left.io_rank == right.io_rank
        assert left.final_rank == right.final_rank

    _append_trajectory(
        {
            "part": "6-columnar-ranking",
            "quick": quick,
            "candidates": len(candidates),
            "classes": params["classes"],
            "scalar_ranking_ms": round(scalar_s * 1000, 3),
            "columnar_ranking_ms": round(columnar_s * 1000, 3),
            "ranking_speedup": round(ratio, 3),
        }
    )

    if quick:
        return
    # The scalar tail probes 2 x n weighted sums per sort; the columnar path
    # replaces them with one cube accumulation (measured well above the
    # asserted floor on the reference container).
    assert ratio >= 2.0, (
        f"columnar ranking only {ratio:.2f}x over scalar "
        f"({columnar_s * 1000:.2f}ms vs {scalar_s * 1000:.2f}ms)"
    )


# ---------------------------------------------------------------------------
# Part 7: the HTTP service under concurrent what-if load
# ---------------------------------------------------------------------------

#: Concurrent requests fired at the service (threads = requests: every client
#: has its own socket, so the bound is the service's worker pool, not the
#: client side).
SERVICE_LOAD_QUICK = 8
SERVICE_LOAD_FULL = 16


def _http_post_json(url, payload, timeout=600):
    import urllib.request

    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _http_post_sse(url, payload, timeout=600):
    import urllib.request

    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Accept": "text/event-stream"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        raw = response.read().decode()
    frames = []
    for block in raw.split("\n\n"):
        if block.strip():
            lines = dict(line.split(": ", 1) for line in block.splitlines())
            frames.append((lines["event"], json.loads(lines["data"])))
    return frames


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def test_e11_service_concurrent_load(quick):
    """Part 7: the advisor service under concurrent what-if load.

    Two warehouses (the same inputs at 64 and 32 disks) are registered and
    warmed with one recommend each — the paper's interactive session shape,
    now multi-tenant.  A batch of concurrent clients then mixes memoized
    recommends with tune studies across both warehouses; the streamed
    variants must terminate their progress at ``completed == total`` and
    every result must be fingerprint-identical to an in-process session over
    the same inputs.
    """
    import threading

    from repro.service import AdvisorServer, RequestExecutor, SessionRegistry

    params = QUICK if quick else FULL
    load = SERVICE_LOAD_QUICK if quick else SERVICE_LOAD_FULL
    schema, workload, system, config = _inputs(params)
    systems = {"wh64": system, "wh32": system.with_disks(32)}

    server = AdvisorServer(
        registry=SessionRegistry(max_sessions=4),
        executor=RequestExecutor(workers=4, capacity=load * 2),
    )
    for name, sys_params in systems.items():
        server.registry.register(name, schema, workload, sys_params, config=config)
    server.start_in_background()
    try:
        # -- warm both sessions (one cold sweep each, timed as reference) -------
        warm_times = {}
        for name in systems:
            start = time.perf_counter()
            _http_post_json(
                f"{server.url}/warehouses/{name}/submit", {"kind": "recommend"}
            )
            warm_times[name] = time.perf_counter() - start
        assert server.registry.live_sessions == len(systems)

        # -- concurrent what-if load over the warm sessions ---------------------
        warehouses = list(systems)
        payloads = [
            {"kind": "recommend"}
            if index % 2 == 0
            else {"kind": "tune", "study": "disks", "settings": [16, 32, 64]}
            for index in range(load)
        ]
        results = [None] * load
        latencies = [None] * load

        def client(index):
            name = warehouses[index % len(warehouses)]
            start = time.perf_counter()
            body = _http_post_json(
                f"{server.url}/warehouses/{name}/submit", payloads[index]
            )
            latencies[index] = time.perf_counter() - start
            results[index] = (name, body)

        batch_start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(load)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        batch_s = time.perf_counter() - batch_start
        assert all(result is not None for result in results), "a client failed"

        # -- one streamed request per warehouse: progress must terminate --------
        for name in systems:
            frames = _http_post_sse(
                f"{server.url}/warehouses/{name}/submit?stream=1",
                {"kind": "tune", "study": "disks", "settings": [16, 32, 64]},
            )
            kinds = [kind for kind, _ in frames]
            assert kinds[-2:] == ["result", "done"]
            progress = [data for kind, data in frames if kind == "progress"]
            assert progress
            assert progress[-1]["completed"] == progress[-1]["total"]

        # -- parity: every HTTP result == the in-process session ----------------
        oracles = {
            name: AdvisorSession(schema, workload, sys_params, config=config)
            for name, sys_params in systems.items()
        }
        for index, (name, body) in enumerate(results):
            oracle = oracles[name]
            if payloads[index]["kind"] == "recommend":
                assert body["fingerprint"] == oracle.recommend().fingerprint, (
                    f"HTTP recommend diverged from in-process on {name}"
                )
            else:
                expected = oracle.tune("disks", settings=(16, 32, 64)).to_dict()
                assert body["result"] == json.loads(json.dumps(expected)), (
                    f"HTTP tune diverged from in-process on {name}"
                )

        sorted_latency = sorted(latencies)
        p50 = _percentile(sorted_latency, 0.50)
        p99 = _percentile(sorted_latency, 0.99)
        print()
        print_table(
            f"E11: service load — {load} concurrent what-if requests over "
            f"{len(systems)} warm sessions (4 request workers)",
            ["metric", "value"],
            [
                ["cold warm-up sweeps [s]",
                 ", ".join(f"{name} {t:.3f}" for name, t in warm_times.items())],
                ["batch wall time [s]", f"{batch_s:.3f}"],
                ["throughput [req/s]", f"{load / batch_s:.1f}"],
                ["p50 latency [s]", f"{p50:.3f}"],
                ["p99 latency [s]", f"{p99:.3f}"],
                ["served / cancelled", f"{server.served} / {server.cancelled}"],
            ],
        )

        _append_trajectory(
            {
                "part": "7-service-load",
                "quick": quick,
                "concurrent_requests": load,
                "warm_sessions": len(systems),
                "request_workers": 4,
                "batch_s": round(batch_s, 4),
                "throughput_rps": round(load / batch_s, 2),
                "p50_s": round(p50, 4),
                "p99_s": round(p99, 4),
                "cold_sweep_s": {
                    name: round(t, 4) for name, t in warm_times.items()
                },
            }
        )

        # The warm what-if requests ride the session memo and cache: even the
        # p99 must come in well under a cold sweep (loose bound — the point
        # is "interactive against warm sessions", not a specific speedup).
        assert p99 < max(warm_times.values()) * 2 + 5.0, (
            f"p99 latency {p99:.3f}s is not interactive against warm sessions "
            f"(cold sweeps {warm_times})"
        )
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# Part 8: the distributed sweep fabric under injected faults
# ---------------------------------------------------------------------------


def test_e11_fabric_fault_parity(quick):
    """Part 8: distributed sweep vs local — bit parity under injected faults.

    The same sweep runs once locally and once over the fabric with two
    in-process workers, one of which is killed after its first lease
    (``kill_after=1`` — evaluated but never submitted, the worst-case loss).
    The coordinator must recover the lease through its deadline re-queue and
    the recommendation fingerprint must match the local run bit for bit:
    chunking happens before distribution, so worker count and worker deaths
    cannot change a single number.
    """
    import socket as socket_module
    import threading

    from repro.fabric import FaultPlan, RetryPolicy, run_worker

    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)

    local, local_s = _timed_recommend(Warlock(schema, workload, system, config))
    expected = recommendation_fingerprint(local)

    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    retry = RetryPolicy(
        max_attempts=20, base_delay=0.05, max_delay=0.2, deadline=30.0
    )
    chaos = FaultPlan.parse("kill_after=1,seed=7").injector()

    def serve(faults):
        try:
            run_worker(("127.0.0.1", port), retry=retry, faults=faults)
        except Exception:
            pass  # the injected kill ends this thread; that is the experiment

    threads = [
        threading.Thread(target=serve, args=(chaos,), daemon=True),
        threading.Thread(target=serve, args=(None,), daemon=True),
    ]
    for thread in threads:
        thread.start()

    advisor = Warlock(
        schema,
        workload,
        system,
        config,
        options=EngineOptions(
            fabric=f"127.0.0.1:{port}", fabric_lease=1.0, fabric_grace=60.0
        ),
    )
    fabric, fabric_s = _timed_recommend(advisor)
    for thread in threads:
        thread.join(timeout=60)

    assert recommendation_fingerprint(fabric) == expected, (
        "fabric sweep diverged from the local run under injected faults"
    )
    assert chaos.chunks_evaluated == 1, "the injected worker kill never fired"

    print()
    print_table(
        "E11: fabric fault parity — 2 workers, one killed after its first lease",
        ["metric", "value"],
        [
            ["local sweep [s]", f"{local_s:.3f}"],
            ["fabric sweep [s]", f"{fabric_s:.3f}"],
            ["injected kill after", f"{chaos.chunks_evaluated} chunk(s)"],
            ["fingerprint parity", "bit-identical"],
        ],
    )

    _append_trajectory(
        {
            "part": "8-fabric-fault-parity",
            "quick": quick,
            "workers": 2,
            "killed_workers": 1,
            "local_s": round(local_s, 4),
            "fabric_s": round(fabric_s, 4),
            "parity": True,
        }
    )
