"""E11 — The candidate-evaluation engine: serial vs parallel vs cached.

The advisor's hot path is the candidate sweep: every surviving fragmentation
is evaluated against every query class of the mix.  This experiment measures
the evaluation-engine pipeline on a large synthetic sweep (hundreds of
candidates, thousands of (candidate × query class) work units) in four modes:

* **serial/uncached** — the seed-equivalent baseline: one inline loop, every
  access structure recomputed for both the prefetch run-length pass and the
  evaluation pass;
* **serial/cached** — the engine's memoized pipeline (``jobs=1``);
* **parallel** — the process-pool backend (``jobs=4``);
* **warm** — a repeated sweep against the already-populated cache, the shape
  every what-if tuning iteration takes.

Assertions: all four modes return bit-identical recommendations
(:func:`repro.engine.recommendation_fingerprint`); the warm cache-aware sweep
is at least 2x faster than the serial baseline; and — on machines that
actually have the cores — ``jobs=4`` beats the serial baseline by at least 2x.
The multicore assertion is gated on CPU availability because a process pool
cannot beat physics on a single-core container; the measured numbers are
printed either way.
"""

from __future__ import annotations

import os
import time

from repro import AdvisorConfig, SystemParameters, Warlock, synthetic_schema
from repro.engine import recommendation_fingerprint
from repro.workload.generator import random_query_mix

from conftest import print_table

#: The full sweep: 7 dimensions x 3 levels enumerate >1000 point
#: fragmentations of which well over 200 survive the thresholds; 32 query
#: classes give every candidate a substantial per-class cost sweep.
FULL = dict(dimensions=7, bottom=400, classes=40, max_fragments=30_000, min_candidates=200)
#: Smoke mode for CI: same pipeline, small sweep, no speedup thresholds.
QUICK = dict(dimensions=5, bottom=200, classes=8, max_fragments=20_000, min_candidates=20)

JOBS = 4


def _inputs(params):
    schema = synthetic_schema(
        num_dimensions=params["dimensions"],
        levels_per_dimension=3,
        bottom_cardinality=params["bottom"],
        fact_rows=30_000_000,
    )
    workload = random_query_mix(schema, num_classes=params["classes"], seed=11)
    system = SystemParameters(num_disks=64)
    config = AdvisorConfig(
        max_fragments=params["max_fragments"], max_fragmentation_dimensions=3
    )
    return schema, workload, system, config


def _timed_recommend(advisor):
    start = time.perf_counter()
    recommendation = advisor.recommend()
    return recommendation, time.perf_counter() - start


def test_e11_parallel_engine_speedup_and_parity(benchmark, quick):
    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)

    # Mode 1: seed-equivalent serial baseline (no cache, inline loop).
    serial_advisor = Warlock(schema, workload, system, config, jobs=1, cache=False)
    specs, report = serial_advisor.generate_specs()
    plan = serial_advisor.engine().plan(specs)
    serial_rec, serial_s = _timed_recommend(serial_advisor)

    # Mode 2: cache-aware engine, still serial.
    cached_advisor = Warlock(schema, workload, system, config, jobs=1)
    cached_rec, cached_s = _timed_recommend(cached_advisor)
    cold_stats = cached_advisor.cache.stats

    # Mode 3: process-pool backend (timed via pytest-benchmark as the headline).
    parallel_advisor = Warlock(schema, workload, system, config, jobs=JOBS)
    parallel_rec = benchmark.pedantic(
        parallel_advisor.recommend, iterations=1, rounds=1
    )
    parallel_rec2, parallel_s = _timed_recommend(
        Warlock(schema, workload, system, config, jobs=JOBS)
    )

    # Mode 4: warm cache (the tuning-iteration shape).
    cached_advisor.cache.reset_stats()
    warm_rec, warm_s = _timed_recommend(cached_advisor)
    warm_stats = cached_advisor.cache.stats

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print()
    print(f"E11: {plan.describe()}")
    print(
        f"E11: candidate space {report.considered} considered, "
        f"{report.surviving_count} evaluated; {cpus} CPU(s) available"
    )
    print_table(
        f"E11: engine modes on the {plan.num_candidates}-candidate sweep",
        ["mode", "time [s]", "speedup vs serial", "notes"],
        [
            ["serial (uncached)", f"{serial_s:.3f}", "1.00x", "seed-equivalent loop"],
            ["engine jobs=1 (cached)", f"{cached_s:.3f}", f"{serial_s / cached_s:.2f}x",
             cold_stats.describe()],
            [f"engine jobs={JOBS}", f"{parallel_s:.3f}", f"{serial_s / parallel_s:.2f}x",
             "process pool"],
            ["engine warm cache", f"{warm_s:.3f}", f"{serial_s / warm_s:.2f}x",
             warm_stats.describe()],
        ],
    )

    # -- parity: every mode returns the bit-identical recommendation ------------
    fingerprints = {
        recommendation_fingerprint(rec)
        for rec in (serial_rec, cached_rec, parallel_rec, parallel_rec2, warm_rec)
    }
    assert len(fingerprints) == 1, "engine modes disagree on the recommendation"

    # -- sweep size: the experiment must exercise a real candidate space --------
    assert plan.num_candidates >= params["min_candidates"]
    assert plan.num_units >= params["min_candidates"] * params["classes"]

    # -- cache effectiveness ----------------------------------------------------
    # Cold: the run-length pass and evaluation pass share every structure.
    assert cold_stats.structure_hits >= plan.num_units
    # Warm: the whole sweep is answered from candidate-level entries.
    assert warm_stats.candidate_hits == plan.num_candidates
    assert warm_stats.hit_rate >= 0.99

    if quick:
        return

    # -- speedups ---------------------------------------------------------------
    # The memoized warm sweep must beat the seed-equivalent serial loop >= 2x
    # (in practice it is an order of magnitude).
    assert serial_s / warm_s >= 2.0, (
        f"warm cache sweep only {serial_s / warm_s:.2f}x over serial "
        f"({warm_s:.3f}s vs {serial_s:.3f}s)"
    )
    # The process pool must beat the serial loop >= 2x wherever the hardware
    # can run 4 workers; on fewer cores the pool cannot win by construction,
    # so the measured ratio above is reported without this assertion.
    if cpus >= JOBS:
        assert serial_s / parallel_s >= 2.0, (
            f"jobs={JOBS} only {serial_s / parallel_s:.2f}x over serial "
            f"({parallel_s:.3f}s vs {serial_s:.3f}s) on {cpus} CPUs"
        )


def test_e11_tuning_reuse_via_shared_cache(quick):
    """What-if studies sharing the advisor's cache reuse the sweep's work."""
    from repro.tuning import disk_count_study, workload_weight_study

    params = QUICK if quick else FULL
    schema, workload, system, config = _inputs(params)
    advisor = Warlock(schema, workload, system, config)
    recommendation = advisor.recommend()
    spec = recommendation.best.spec

    advisor.cache.reset_stats()
    start = time.perf_counter()
    disk_count_study(
        schema, workload, system, spec, disk_counts=(16, 32, 64), config=config,
        cache=advisor.cache,
    )
    first_class = next(iter(workload)).name
    workload_weight_study(
        schema, workload, system, spec,
        reweightings={"drill-heavy": {first_class: 10.0}},
        config=config,
        cache=advisor.cache,
    )
    elapsed = time.perf_counter() - start
    stats = advisor.cache.stats
    print()
    print(f"E11: tuning studies over the recommended spec took {elapsed:.3f}s")
    print(f"E11: {stats.describe()}")
    # The disk-count study varies only the system: every access structure of
    # the studied spec is reused from the recommend() sweep.
    assert stats.structure_hits > 0
    assert stats.hit_rate > 0.5
