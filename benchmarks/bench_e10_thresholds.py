"""E10 — Exclusion thresholds and the candidate space (§3.2).

Regenerates the candidate-space accounting: how many point fragmentations the
APB-1-style schema induces, and how many of them each exclusion threshold
removes as the thresholds are tightened or relaxed (minimum one fragment per
disk, maximum fragment count, minimum average fragment size relative to the
prefetch granule).
"""

from __future__ import annotations

from repro import Warlock, count_point_fragmentations
from repro.core import AdvisorConfig

from conftest import print_table

MAX_FRAGMENT_SETTINGS = (2_000, 20_000, 100_000, 1_000_000)
MIN_FRAGMENT_PAGE_SETTINGS = (1, 8, 16, 32)


def run_e10(apb_schema, apb_workload, apb_system):
    """Candidate-space survival under different threshold settings."""
    from repro.errors import AdvisorError

    total = count_point_fragmentations(apb_schema)
    by_max_fragments = {}
    for max_fragments in MAX_FRAGMENT_SETTINGS:
        config = AdvisorConfig(max_fragments=max_fragments)
        advisor = Warlock(apb_schema, apb_workload, apb_system, config)
        try:
            _, report = advisor.generate_specs()
            by_max_fragments[max_fragments] = report
        except AdvisorError:  # all candidates excluded
            by_max_fragments[max_fragments] = None
    by_min_pages = {}
    for min_pages in MIN_FRAGMENT_PAGE_SETTINGS:
        config = AdvisorConfig(max_fragments=1_000_000, min_fragment_pages=min_pages)
        advisor = Warlock(apb_schema, apb_workload, apb_system, config)
        try:
            _, report = advisor.generate_specs()
            by_min_pages[min_pages] = report
        except AdvisorError:
            by_min_pages[min_pages] = None
    return total, by_max_fragments, by_min_pages


def test_e10_threshold_sweep(benchmark, apb_schema, apb_workload, apb_system):
    total, by_max_fragments, by_min_pages = benchmark.pedantic(
        run_e10, args=(apb_schema, apb_workload, apb_system), iterations=1, rounds=1
    )

    print()
    print(f"E10: {total} point fragmentations in the APB-1-style candidate space")
    print_table(
        "E10a: surviving candidates vs. maximum-fragment threshold",
        ["max fragments", "considered", "excluded", "surviving"],
        [
            [
                f"{max_fragments:,}",
                report.considered if report else total,
                report.excluded_count if report else total,
                report.surviving_count if report else 0,
            ]
            for max_fragments, report in by_max_fragments.items()
        ],
    )
    print_table(
        "E10b: surviving candidates vs. minimum average fragment size",
        ["min fragment pages", "considered", "excluded", "surviving"],
        [
            [
                f"{min_pages:,}",
                report.considered if report else total,
                report.excluded_count if report else total,
                report.surviving_count if report else 0,
            ]
            for min_pages, report in by_min_pages.items()
        ],
    )
    strict = by_min_pages[MIN_FRAGMENT_PAGE_SETTINGS[-1]]
    if strict is not None:
        print("E10c: violation histogram under the strictest size threshold:")
        for reason, count in strict.violation_histogram().items():
            print(f"  {count:4d} x {reason}")

    # The point-fragmentation space of the 4-dimensional APB-1 schema:
    # (6+1)*(2+1)*(3+1)*(1+1) - 1 = 167 candidates.
    assert total == 167
    # Relaxing the maximum-fragment threshold monotonically admits more candidates.
    survivors = [
        report.surviving_count if report else 0 for report in by_max_fragments.values()
    ]
    assert survivors == sorted(survivors)
    # Tightening the minimum-fragment-size threshold monotonically removes candidates.
    size_survivors = [
        report.surviving_count if report else 0 for report in by_min_pages.values()
    ]
    assert size_survivors == sorted(size_survivors, reverse=True)
    # The thresholds always leave a non-trivial but strongly pruned space at defaults.
    default_report = by_max_fragments[100_000]
    assert default_report is not None
    assert 0 < default_report.surviving_count < total


def test_e10_threshold_evaluation_is_cheap(benchmark, apb_schema, apb_workload, apb_system):
    """Threshold evaluation must stay much cheaper than full cost evaluation,
    because it prunes the space before layouts are materialized."""
    config = AdvisorConfig(max_fragments=100_000)
    advisor = Warlock(apb_schema, apb_workload, apb_system, config)

    def generate():
        return advisor.generate_specs()

    surviving, report = benchmark(generate)
    print()
    print(
        f"E10d: thresholds pruned {report.excluded_count}/{report.considered} candidates "
        f"before cost evaluation"
    )
    assert len(surviving) == report.surviving_count
