"""E9 — Validation of the analytical I/O model against the replay simulator (§3.2, ref. [3]).

The original authors validated their analytical model against a testbed; this
reproduction validates it against the Monte-Carlo disk replay simulator: for
the top candidates of E1, the analytically predicted I/O cost and response time
are compared with simulated values, and the ranking the two methods induce is
checked for agreement.
"""

from __future__ import annotations

import numpy as np

from repro import DiskSimulator

from conftest import print_table

QUERIES_PER_CLASS = 8


def run_e9(recommendation, workload, system):
    """Simulate the workload on every ranked candidate."""
    simulator = DiskSimulator(system)
    results = []
    for ranked in recommendation.ranked:
        candidate = ranked.candidate
        simulated = simulator.run_workload(
            candidate.layout,
            workload,
            candidate.bitmap_scheme,
            candidate.allocation,
            candidate.prefetch,
            queries_per_class=QUERIES_PER_CLASS,
            seed=0,
        )
        results.append((candidate, simulated))
    return results


def test_e9_model_validation(benchmark, apb_recommendation, apb_workload, apb_system):
    results = benchmark.pedantic(
        run_e9, args=(apb_recommendation, apb_workload, apb_system), iterations=1, rounds=1
    )

    rows = []
    busy_errors = []
    response_errors = []
    for candidate, simulated in results:
        busy_error = abs(candidate.io_cost_ms - simulated.weighted_busy_ms) / simulated.weighted_busy_ms
        response_error = (
            abs(candidate.response_time_ms - simulated.weighted_response_ms)
            / simulated.weighted_response_ms
        )
        busy_errors.append(busy_error)
        response_errors.append(response_error)
        rows.append(
            [
                candidate.label,
                f"{candidate.io_cost_ms:,.0f}",
                f"{simulated.weighted_busy_ms:,.0f}",
                f"{busy_error:.1%}",
                f"{candidate.response_time_ms:,.0f}",
                f"{simulated.weighted_response_ms:,.0f}",
                f"{response_error:.1%}",
            ]
        )
    print_table(
        "E9: analytical model vs. Monte-Carlo replay (top candidates)",
        ["fragmentation", "I/O cost model", "I/O cost sim", "err",
         "response model", "response sim", "err"],
        rows,
    )

    model_busy = np.array([c.io_cost_ms for c, _ in results])
    sim_busy = np.array([s.weighted_busy_ms for _, s in results])
    model_resp = np.array([c.response_time_ms for c, _ in results])
    sim_resp = np.array([s.weighted_response_ms for _, s in results])

    # Busy time (total I/O work) must agree tightly — it does not depend on
    # placement or instance sampling noise.
    assert float(np.median(busy_errors)) < 0.25
    # Response time agrees within a generous bound (instance variance, skew).
    assert float(np.median(response_errors)) < 0.5
    # The candidate orderings induced by model and simulation correlate strongly.
    if len(results) >= 3:
        busy_corr = np.corrcoef(_ranks(model_busy), _ranks(sim_busy))[0, 1]
        resp_corr = np.corrcoef(_ranks(model_resp), _ranks(sim_resp))[0, 1]
        print(f"E9b: rank correlation — I/O cost {busy_corr:+.2f}, response time {resp_corr:+.2f}")
        assert busy_corr > 0.6
        assert resp_corr > 0.3


def _ranks(values: np.ndarray) -> np.ndarray:
    """Rank transform (average-free, sufficient for correlation of distinct values)."""
    order = np.argsort(values)
    ranks = np.empty_like(order)
    ranks[order] = np.arange(len(values))
    return ranks.astype(float)


def test_e9_batch_throughput_follows_io_cost(benchmark, apb_recommendation, apb_workload, apb_system):
    """Multi-user replay: total batch makespan tracks the I/O-cost metric, which is
    why WARLOCK ranks by I/O cost first."""
    import numpy as np
    from repro.simulation import instantiate_query

    simulator = DiskSimulator(apb_system)
    candidates = [r.candidate for r in apb_recommendation.ranked[:3]]

    def batch_makespans():
        makespans = {}
        for candidate in candidates:
            rng = np.random.default_rng(1)
            instances = [
                instantiate_query(candidate.layout, qc, candidate.bitmap_scheme, rng)
                for qc in apb_workload
                for _ in range(2)
            ]
            result = simulator.run_batch(instances, candidate.allocation, candidate.prefetch)
            makespans[candidate.label] = result.makespan_ms
        return makespans

    makespans = benchmark.pedantic(batch_makespans, iterations=1, rounds=1)
    print()
    print("E9c: 16-query batch makespan per candidate")
    for label, makespan in makespans.items():
        print(f"  {label}: {makespan:,.0f} ms")
    assert all(makespan > 0 for makespan in makespans.values())
