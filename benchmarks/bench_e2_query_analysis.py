"""E2 — Detailed fragmentation / query analysis statistic (Fig. 2, §3.3).

Regenerates, for the winning fragmentation of E1, the detailed statistic the
tool's analysis layer shows: the database statistic (#pages, #fragments,
fragment sizes), the I/O access statistic per query class (#accessed fragments
and pages, #I/Os), the I/O response times and the prefetch granule suggestion.
"""

from __future__ import annotations

from repro.analysis import build_database_statistics, build_query_statistics

from conftest import print_table


def run_e2(recommendation, workload):
    """Build both statistic families for the winning candidate."""
    candidate = recommendation.best
    return (
        build_database_statistics(candidate),
        build_query_statistics(candidate, workload),
    )


def test_e2_query_analysis(benchmark, apb_recommendation, apb_workload):
    database, query_stats = benchmark.pedantic(
        run_e2, args=(apb_recommendation, apb_workload), iterations=1, rounds=3
    )
    candidate = apb_recommendation.best

    print()
    print(f"E2: fragmentation / query analysis for {candidate.label}")
    print_table(
        "E2a: database statistic",
        ["#fragments", "fact pages", "bitmap pages", "avg frag pages", "min", "max", "size CV"],
        [[
            f"{database.fragment_count:,}",
            f"{database.fact_pages:,}",
            f"{database.bitmap_pages:,}",
            f"{database.avg_fragment_pages:,.1f}",
            f"{database.min_fragment_pages:,}",
            f"{database.max_fragment_pages:,}",
            f"{database.fragment_size_cv:.3f}",
        ]],
    )
    print_table(
        "E2b: I/O access statistic and response times per query class",
        ["query class", "share", "#fragments", "fact pages", "bitmap pages", "#I/Os",
         "I/O cost [ms]", "response [ms]", "disks"],
        [
            [
                stat.query_name,
                f"{stat.workload_share:.1%}",
                f"{stat.fragments_accessed:,.1f}",
                f"{stat.fact_pages_accessed:,.0f}",
                f"{stat.bitmap_pages_accessed:,.0f}",
                f"{stat.io_requests:,.0f}",
                f"{stat.io_cost_ms:,.1f}",
                f"{stat.response_time_ms:,.1f}",
                stat.disks_used,
            ]
            for stat in query_stats
        ],
    )
    print(f"E2c: prefetch granule suggestion: {candidate.prefetch.describe()}")

    # Shape assertions ----------------------------------------------------------
    # Every workload class is covered and shares sum to one.
    assert len(query_stats) == len(apb_workload)
    assert sum(s.workload_share for s in query_stats) == 1.0 or abs(
        sum(s.workload_share for s in query_stats) - 1.0
    ) < 1e-9
    # The database statistic is internally consistent.
    assert database.min_fragment_pages <= database.avg_fragment_pages <= database.max_fragment_pages
    assert database.fragment_count == candidate.fragment_count
    # Queries restricting fragmentation dimensions are confined to a subset of
    # the fragments; at least one class must demonstrate confinement.
    assert any(s.fragment_hit_ratio < 0.5 for s in query_stats)
    # Every class produces I/O and a positive response time.
    assert all(s.io_requests > 0 and s.response_time_ms > 0 for s in query_stats)
    # The prefetch suggestion distinguishes fact and bitmap granules.
    assert candidate.prefetch.fact_pages >= candidate.prefetch.bitmap_pages
