"""E4 — MDHF dimensionality: confinement of star-query work (§2, ref. [5]).

Regenerates the comparison of one-, two- and three-dimensional fragmentations
against the unfragmented baseline.  The paper's claim (carried over from the
MDHF paper [5]): multi-dimensional hierarchical fragmentation confines star
query work to a subset of the fragments whenever *at least one* fragmentation
dimension is referenced, so adding fragmentation dimensions that the workload
references increases the share of the workload that benefits, reduces the data
volume read per query, and improves response times over the unfragmented
layout.

The experiment uses a larger APB-1 scale than the other benchmarks so that even
the three-dimensional fragmentation keeps fragment sizes above the prefetching
granule — exactly the regime WARLOCK's thresholds would admit.
"""

from __future__ import annotations

import pytest

from repro import FragmentationSpec, Warlock, apb1_schema, design_bitmap_scheme
from repro.core import AdvisorConfig

from conftest import print_table

#: Scale used by this experiment (~5 M fact rows, ~39 000 fact pages).
E4_SCALE = 0.2

SPECS = {
    "unfragmented": FragmentationSpec.none(),
    "1-D: time.month": FragmentationSpec.of(("time", "month")),
    "2-D: time.month x product.line": FragmentationSpec.of(
        ("time", "month"), ("product", "line")
    ),
    "3-D: time.month x product.line x channel.channel": FragmentationSpec.of(
        ("time", "month"), ("product", "line"), ("channel", "channel")
    ),
}


@pytest.fixture(scope="module")
def e4_schema():
    return apb1_schema(scale=E4_SCALE)


def run_e4(schema, apb_workload, apb_system):
    """Evaluate each fragmentation dimensionality over the query mix."""
    config = AdvisorConfig(max_fragments=200_000, include_baseline=True)
    advisor = Warlock(schema, apb_workload, apb_system, config)
    scheme = design_bitmap_scheme(schema, apb_workload)
    return {label: advisor.evaluate_spec(spec, scheme) for label, spec in SPECS.items()}


def test_e4_mdhf_dimensionality(benchmark, e4_schema, apb_workload, apb_system):
    candidates = benchmark.pedantic(
        run_e4, args=(e4_schema, apb_workload, apb_system), iterations=1, rounds=1
    )

    shares = apb_workload.shares()
    rows = []
    confined_share = {}
    for label, candidate in candidates.items():
        # Workload share for which the fragmentation confines access to <50% of
        # the fragments ("the query benefits from the fragmentation").
        benefit = sum(
            shares[cost.query_name]
            for cost in candidate.evaluation.per_class
            if cost.profile.fragment_hit_ratio < 0.5
        )
        confined_share[label] = benefit
        rows.append(
            [
                label,
                f"{candidate.fragment_count:,}",
                f"{candidate.layout.average_fragment_pages:,.0f}",
                f"{benefit:.0%}",
                f"{candidate.pages_accessed:,.0f}",
                f"{candidate.io_cost_ms:,.0f}",
                f"{candidate.response_time_ms:,.0f}",
            ]
        )
    print_table(
        "E4: effect of fragmentation dimensionality (APB-1-style mix, 64 disks, scale 0.2)",
        ["fragmentation", "fragments", "avg frag pages", "workload confined",
         "pages/query", "I/O cost [ms]", "response [ms]"],
        rows,
    )

    base = candidates["unfragmented"]
    one_d = candidates["1-D: time.month"]
    two_d = candidates["2-D: time.month x product.line"]
    three_d = candidates["3-D: time.month x product.line x channel.channel"]

    # The unfragmented baseline confines nothing and has the worst response time.
    assert confined_share["unfragmented"] == 0.0
    assert base.response_time_ms > one_d.response_time_ms
    assert base.response_time_ms > two_d.response_time_ms
    # Confinement grows (weakly) with every added fragmentation dimension the
    # workload references.
    assert (
        confined_share["1-D: time.month"]
        <= confined_share["2-D: time.month x product.line"] + 1e-9
    )
    assert (
        confined_share["2-D: time.month x product.line"]
        <= confined_share["3-D: time.month x product.line x channel.channel"] + 1e-9
    )
    # With two fragmentation dimensions most of this workload is confined.
    assert confined_share["2-D: time.month x product.line"] >= 0.5
    # Fragmentation reduces the data volume read per query versus the baseline.
    assert two_d.pages_accessed < base.pages_accessed
    assert three_d.pages_accessed <= base.pages_accessed


def test_e4_queries_missing_all_fragmentation_dimensions_do_not_benefit(
    benchmark, e4_schema, apb_workload, apb_system
):
    """A query that references no fragmentation dimension touches every fragment."""
    config = AdvisorConfig(max_fragments=200_000)
    advisor = Warlock(e4_schema, apb_workload, apb_system, config)
    scheme = design_bitmap_scheme(e4_schema, apb_workload)
    spec = FragmentationSpec.of(("customer", "retailer"))
    candidate = benchmark.pedantic(
        advisor.evaluate_spec, args=(spec, scheme), iterations=1, rounds=1
    )

    hit_ratios = {
        cost.query_name: cost.profile.fragment_hit_ratio
        for cost in candidate.evaluation.per_class
    }
    print()
    print("E4b: fragment hit ratio per class on customer.retailer fragmentation")
    for name, ratio in hit_ratios.items():
        print(f"  {name}: {ratio:.2f}")
    # Classes that do not restrict the customer dimension scan all fragments.
    assert hit_ratios["Q1-month-group"] == 1.0
    assert hit_ratios["Q8-year-report"] == 1.0
    # Classes restricting the customer dimension are confined.
    assert hit_ratios["Q2-quarter-retailer"] < 0.05
