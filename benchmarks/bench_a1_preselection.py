"""A1 (ablation) — Affinity-based pre-selection of fragmentation dimensions.

The advisor evaluates every point fragmentation that survives the thresholds.
The affinity graph (`repro.graph`) offers a cheaper pre-selection: restrict the
candidate space to fragmentations whose attributes come from the dimensions the
workload co-accesses most.  This ablation measures how much of the candidate
space the pre-selection removes and verifies that the advisor's winner is
preserved — i.e. the pre-selection is a safe accelerator for wide schemas, not
a different heuristic.
"""

from __future__ import annotations

from repro import Warlock, suggest_fragmentation_dimensions
from repro.core import AdvisorConfig, rank_candidates

from conftest import print_table


def run_a1(apb_schema, apb_workload, apb_system):
    """Evaluate the full candidate space and the pre-selected subspace."""
    config = AdvisorConfig(top_candidates=5, max_fragments=100_000)
    advisor = Warlock(apb_schema, apb_workload, apb_system, config)

    specs, report = advisor.generate_specs()
    bitmap_scheme = advisor.design_bitmaps()
    all_candidates = [advisor.evaluate_spec(spec, bitmap_scheme) for spec in specs]

    suggested = set(
        suggest_fragmentation_dimensions(apb_schema, apb_workload, max_dimensions=2)
    )
    restricted_specs = [
        spec for spec in specs if set(spec.dimensions) <= suggested
    ]
    restricted_candidates = [
        candidate
        for candidate, spec in zip(all_candidates, specs)
        if set(spec.dimensions) <= suggested
    ]
    return {
        "report": report,
        "suggested": suggested,
        "all_specs": specs,
        "restricted_specs": restricted_specs,
        "full_ranking": rank_candidates(all_candidates, top_fraction=0.25, top_candidates=5),
        "restricted_ranking": rank_candidates(
            restricted_candidates, top_fraction=0.25, top_candidates=5
        )
        if restricted_candidates
        else [],
    }


def test_a1_preselection(benchmark, apb_schema, apb_workload, apb_system):
    results = benchmark.pedantic(
        run_a1, args=(apb_schema, apb_workload, apb_system), iterations=1, rounds=1
    )

    full = results["full_ranking"]
    restricted = results["restricted_ranking"]
    print()
    print(
        f"A1: pre-selected dimensions {sorted(results['suggested'])}; candidate space "
        f"{len(results['all_specs'])} -> {len(results['restricted_specs'])} specs"
    )
    print_table(
        "A1: full-space vs. pre-selected-space ranking (top 3)",
        ["rank", "full space", "pre-selected space"],
        [
            [
                i + 1,
                full[i].label if i < len(full) else "-",
                restricted[i].label if i < len(restricted) else "-",
            ]
            for i in range(3)
        ],
    )

    # The pre-selection prunes a substantial part of the space ...
    assert len(results["restricted_specs"]) < len(results["all_specs"])
    assert len(results["restricted_specs"]) >= 1
    # ... while preserving the advisor's winner (the winner's dimensions are a
    # subset of the suggested ones, so it survives the restriction).
    assert restricted, "pre-selected space must not be empty"
    assert full[0].label == restricted[0].label
    # Every pre-selected candidate only uses suggested dimensions.
    for spec in results["restricted_specs"]:
        assert set(spec.dimensions) <= results["suggested"]
