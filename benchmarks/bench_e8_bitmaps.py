"""E8 — Bitmap scheme: standard vs. encoded bitmaps, space vs. I/O (§2, §3.2, §3.3).

Regenerates the bitmap-scheme analysis: the space/I/O behaviour of the
heuristic scheme (standard bitmaps on low-cardinality attributes,
hierarchically encoded bitmaps on high-cardinality attributes), compared
against an all-standard scheme, an all-encoded scheme, a scheme with
user-excluded indexes (the interactive space-saving knob of §3.3) and no
bitmaps at all.

The bitmap join indexes exist "to avoid costly fact table scans", so the I/O
comparison is carried out on the *unfragmented* fact table — the layout on
which every residual predicate must be answered by bitmaps or by a full scan.
The space comparison is independent of the fragmentation (bitmap fragments
always mirror the fact fragments).
"""

from __future__ import annotations

import pytest

from repro import BitmapType, FragmentationSpec, IOCostModel, build_layout, design_bitmap_scheme
from repro.bitmap import BitmapScheme
from repro.storage import PrefetchSetting

from conftest import print_table

PREFETCH = PrefetchSetting.fixed(32, 4)


def build_schemes(schema, workload):
    """The bitmap scheme variants compared by the experiment."""
    heuristic = design_bitmap_scheme(schema, workload)
    all_standard = design_bitmap_scheme(schema, workload, cardinality_threshold=10_000_000)
    all_encoded = design_bitmap_scheme(schema, workload, cardinality_threshold=1)
    slim = heuristic.without(("product", "code"), ("customer", "store"))
    return {
        "no bitmaps": BitmapScheme(),
        "heuristic (standard<=64, else encoded)": heuristic,
        "all standard": all_standard,
        "all encoded": all_encoded,
        "heuristic minus code/store indexes": slim,
    }


def run_e8(workload, system, schema):
    """Evaluate the unfragmented fact table under each bitmap scheme variant."""
    layout = build_layout(schema, FragmentationSpec.none(), page_size_bytes=system.page_size_bytes)
    model = IOCostModel(system)
    results = {}
    for label, scheme in build_schemes(schema, workload).items():
        evaluation = model.evaluate(layout, workload, scheme, PREFETCH)
        results[label] = (scheme, evaluation)
    return results


def test_e8_bitmap_schemes(benchmark, apb_workload, apb_system, apb_schema):
    results = benchmark.pedantic(
        run_e8, args=(apb_workload, apb_system, apb_schema), iterations=1, rounds=1
    )
    fact_rows = apb_schema.fact_table().row_count
    page_size = apb_system.page_size_bytes

    rows = []
    for label, (scheme, evaluation) in results.items():
        rows.append(
            [
                label,
                f"{len(scheme)}",
                f"{scheme.total_storage_bits_per_row}",
                f"{scheme.storage_pages(fact_rows, page_size):,}",
                f"{evaluation.total_pages_accessed:,.0f}",
                f"{evaluation.total_io_cost_ms:,.0f}",
                f"{evaluation.total_response_time_ms:,.0f}",
            ]
        )
    print_table(
        "E8: bitmap scheme variants on the unfragmented fact table",
        ["scheme", "#indexes", "bits/row", "bitmap pages", "pages/query",
         "I/O cost [ms]", "response [ms]"],
        rows,
    )

    heuristic_scheme, heuristic_eval = results["heuristic (standard<=64, else encoded)"]
    standard_scheme, standard_eval = results["all standard"]
    encoded_scheme, encoded_eval = results["all encoded"]
    _, no_bitmap_eval = results["no bitmaps"]
    slim_scheme, slim_eval = results["heuristic minus code/store indexes"]

    # The heuristic mixes both index kinds.
    kinds = {index.bitmap_type for index in heuristic_scheme}
    assert kinds == {BitmapType.STANDARD, BitmapType.ENCODED}
    # Encoded bitmaps save an order of magnitude of space on the high-cardinality
    # attributes compared to an all-standard scheme.
    assert (
        heuristic_scheme.total_storage_bits_per_row
        < standard_scheme.total_storage_bits_per_row / 10
    )
    assert encoded_scheme.total_storage_bits_per_row <= heuristic_scheme.total_storage_bits_per_row
    # Bitmap join indexes avoid costly fact-table scans: the workload's overall
    # I/O work drops (the gain is bounded by the low-selectivity reporting
    # classes, which scan regardless of indexes) ...
    assert heuristic_eval.total_io_cost_ms < no_bitmap_eval.total_io_cost_ms
    assert heuristic_eval.total_pages_accessed < no_bitmap_eval.total_pages_accessed
    # ... and the highly selective drill-down class (product code + month) avoids
    # its full scan almost entirely: an order-of-magnitude reduction.
    selective = "Q6-month-code"
    pages_with = heuristic_eval.cost_for(selective).profile.fact_pages_accessed
    pages_without = no_bitmap_eval.cost_for(selective).profile.fact_pages_accessed
    print(
        f"E8c: fact pages of {selective}: {pages_without:,.0f} without bitmaps vs. "
        f"{pages_with:,.0f} with the heuristic scheme"
    )
    assert pages_with < pages_without / 10
    # Excluding indexes saves space but costs I/O (the space/time knob of §3.3).
    assert slim_scheme.storage_pages(fact_rows, page_size) < heuristic_scheme.storage_pages(
        fact_rows, page_size
    )
    assert slim_eval.total_io_cost_ms >= heuristic_eval.total_io_cost_ms - 1e-9
    # Standard bitmaps on the high-cardinality attributes read fewer bitmap pages
    # per predicate (one bitmap per value) but cost vastly more space, which is
    # exactly the trade-off the heuristic threshold manages.
    assert standard_eval.total_pages_accessed <= heuristic_eval.total_pages_accessed + 1e-6


def test_e8_bitmap_space_accounting(benchmark, apb_schema, apb_workload, apb_system):
    """Bitmap storage grows linearly with the fact table and is charged per fragment."""
    scheme = design_bitmap_scheme(apb_schema, apb_workload)
    fact_rows = apb_schema.fact_table().row_count

    def storage():
        return scheme.storage_pages(fact_rows, apb_system.page_size_bytes)

    pages = benchmark(storage)
    print()
    print(
        f"E8b: heuristic bitmap scheme stores {scheme.total_storage_bits_per_row} bits/row "
        f"-> {pages:,} pages for {fact_rows:,} rows"
    )
    assert pages > 0
    double = scheme.storage_pages(2 * fact_rows, apb_system.page_size_bytes)
    assert double == pytest.approx(2 * pages, rel=0.01)
