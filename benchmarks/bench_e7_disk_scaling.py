"""E7 — Response-time scaling with the number of disks and architecture (§1, §3).

Regenerates the speed-up curve of the winning fragmentation when the number of
disks grows from 8 to 256, and compares Shared Everything with Shared Disk.
The goal statement of the paper — minimize response times "by utilizing
parallel processing" — implies near-linear gains while a query can still use
extra disks, with diminishing returns once the number of accessed fragments
(and the per-subquery coordination overhead) becomes the limit.
"""

from __future__ import annotations

from repro import IOCostModel, Warlock
from repro.core import AdvisorConfig

from conftest import print_table

DISK_COUNTS = (8, 16, 32, 64, 128, 256)


def run_e7(apb_schema, apb_workload, apb_system, spec):
    """Evaluate the winning fragmentation across disk counts and architectures."""
    config = AdvisorConfig(max_fragments=200_000)
    results = {}
    for disks in DISK_COUNTS:
        system = apb_system.with_disks(disks)
        advisor = Warlock(apb_schema, apb_workload, system, config)
        results[disks] = advisor.evaluate_spec(spec)
    se_system = apb_system.with_architecture("shared_everything")
    results["SE-64"] = Warlock(apb_schema, apb_workload, se_system, config).evaluate_spec(spec)
    return results


def test_e7_disk_scaling(benchmark, apb_schema, apb_workload, apb_system, apb_recommendation):
    spec = apb_recommendation.best.spec
    results = benchmark.pedantic(
        run_e7, args=(apb_schema, apb_workload, apb_system, spec), iterations=1, rounds=1
    )

    base_response = results[DISK_COUNTS[0]].response_time_ms
    rows = []
    for disks in DISK_COUNTS:
        candidate = results[disks]
        rows.append(
            [
                f"{disks}",
                f"{candidate.response_time_ms:,.0f}",
                f"{base_response / candidate.response_time_ms:.2f}x",
                f"{candidate.io_cost_ms:,.0f}",
            ]
        )
    print_table(
        f"E7: response-time scaling with #disks for {spec.label} (Shared Disk)",
        ["disks", "response [ms]", "speed-up vs 8 disks", "I/O cost [ms]"],
        rows,
    )
    se = results["SE-64"]
    sd = results[64]
    print(
        f"E7b: 64 disks — Shared Disk response {sd.response_time_ms:,.0f} ms vs. "
        f"Shared Everything {se.response_time_ms:,.0f} ms"
    )

    responses = [results[d].response_time_ms for d in DISK_COUNTS]
    io_costs = [results[d].io_cost_ms for d in DISK_COUNTS]

    # Response time improves markedly from 8 to 32 disks and then saturates
    # (beyond the saturation point extra disks only add coordination overhead,
    # so a marginal increase is tolerated) ...
    assert responses[0] > responses[2]
    assert responses[3] <= responses[2] * 1.05
    # ... with a worthwhile overall speed-up of the weighted mix (bounded by the
    # many highly selective classes that only touch a handful of fragments) ...
    assert base_response / min(responses) > 1.3
    # ... and clearly diminishing returns at the high end.
    early_gain = responses[0] / responses[1]
    late_gain = responses[-2] / responses[-1] if responses[-1] else 1.0
    assert early_gain > late_gain - 0.05

    # The broadly-declustered class of the mix (the one touching the most
    # fragments) scales much better than the mix average.
    def widest_class_response(candidate):
        widest = max(
            candidate.evaluation.per_class,
            key=lambda cost: cost.profile.fragments_accessed,
        )
        return widest.response_time_ms

    widest_speedup = widest_class_response(results[DISK_COUNTS[0]]) / widest_class_response(
        results[64]
    )
    print(f"E7d: speed-up of the most parallel query class 8 -> 64 disks: {widest_speedup:.2f}x")
    assert widest_speedup > 2.0
    # Total I/O work is independent of the disk count.
    assert max(io_costs) - min(io_costs) < 1e-6 * max(io_costs) + 1e-6
    # Shared Everything pays less coordination overhead per subquery.
    assert se.response_time_ms <= sd.response_time_ms


def test_e7_parallelism_bounded_by_accessed_fragments(benchmark, apb_recommendation, apb_system):
    """A query can use at most as many disks as it touches fragments."""
    candidate = apb_recommendation.best
    model = IOCostModel(apb_system)

    def disks_used_per_class():
        return {
            cost.query_name: cost.disks_used for cost in candidate.evaluation.per_class
        }

    usage = benchmark(disks_used_per_class)
    print()
    print(f"E7c: disks used per query class on {candidate.label}: {usage}")
    for cost in candidate.evaluation.per_class:
        assert cost.disks_used <= apb_system.num_disks
        assert cost.disks_used <= max(1, int(cost.profile.fragments_accessed) + 1)
    assert isinstance(model, IOCostModel)
