"""E5 — Prefetch granule sensitivity (§3.1/§3.2).

Regenerates the response-time-vs-prefetch-granule curve for the winning
fragmentation and compares WARLOCK's auto-chosen granules (separately for fact
table and bitmaps) against fixed settings.  The paper highlights that the
prefetch size is performance sensitive and that optimal values for fact tables
and bitmaps "strongly differ with respect to fragment sizes".
"""

from __future__ import annotations

from repro import IOCostModel
from repro.storage import PrefetchSetting

from conftest import print_table

GRANULES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def run_e5(recommendation, workload, system):
    """Evaluate the winning candidate under a sweep of fixed fact granules."""
    candidate = recommendation.best
    model = IOCostModel(system)
    sweep = {}
    for granule in GRANULES:
        setting = PrefetchSetting.fixed(granule, max(1, granule // 8))
        evaluation = model.evaluate(
            candidate.layout, workload, candidate.bitmap_scheme, setting
        )
        sweep[granule] = evaluation
    auto_eval = model.evaluate(
        candidate.layout, workload, candidate.bitmap_scheme, candidate.prefetch
    )
    return sweep, auto_eval


def test_e5_prefetch_sensitivity(benchmark, apb_recommendation, apb_workload, apb_system):
    sweep, auto_eval = benchmark.pedantic(
        run_e5, args=(apb_recommendation, apb_workload, apb_system), iterations=1, rounds=1
    )
    candidate = apb_recommendation.best

    rows = [
        [
            f"{granule}",
            f"{evaluation.total_io_requests:,.0f}",
            f"{evaluation.total_io_cost_ms:,.0f}",
            f"{evaluation.total_response_time_ms:,.0f}",
        ]
        for granule, evaluation in sweep.items()
    ]
    rows.append(
        [
            f"auto ({candidate.prefetch.fact_pages}/{candidate.prefetch.bitmap_pages})",
            f"{auto_eval.total_io_requests:,.0f}",
            f"{auto_eval.total_io_cost_ms:,.0f}",
            f"{auto_eval.total_response_time_ms:,.0f}",
        ]
    )
    print_table(
        f"E5: prefetch granule sweep on {candidate.label}",
        ["fact granule [pages]", "I/O requests", "I/O cost [ms]", "response [ms]"],
        rows,
    )

    responses = {g: e.total_response_time_ms for g, e in sweep.items()}
    requests = {g: e.total_io_requests for g, e in sweep.items()}

    # Larger granules strictly reduce the request count for scan-dominated work.
    assert requests[1] > requests[16] >= requests[256]
    # The single-page granule is clearly worse than a tuned one (sensitivity).
    assert responses[1] > min(responses.values()) * 1.2
    # The auto-chosen granules are within 10% of the best fixed granule of the sweep.
    assert auto_eval.total_response_time_ms <= min(responses.values()) * 1.10
    # Fact and bitmap granules differ, reflecting the very different extents.
    assert candidate.prefetch.fact_pages != candidate.prefetch.bitmap_pages


def test_e5_auto_granules_differ_between_object_classes(benchmark, apb_recommendation):
    """The auto-optimizer picks a larger granule for fact fragments than for bitmaps."""
    candidate = apb_recommendation.best

    def read_setting():
        return candidate.prefetch

    setting = benchmark(read_setting)
    print()
    print(f"E5b: auto prefetch suggestion -> {setting.describe()}")
    assert setting.fact_pages > setting.bitmap_pages
