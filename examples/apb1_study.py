#!/usr/bin/env python3
"""Full APB-1 study: ranking, trade-off scatter, validation against the simulator.

Reproduces, for an APB-1-style configuration, the complete demonstration walk-
through of the paper:

* the ranked list of fragmentation candidates (two-phase heuristic),
* the I/O-cost vs. response-time trade-off of every evaluated candidate,
* the detailed query analysis of the top candidates,
* a Monte-Carlo replay of the workload against the recommended allocation, so
  the analytical predictions can be compared with simulated values.

Run with::

    python examples/apb1_study.py [--scale 0.1] [--disks 64]
"""

from __future__ import annotations

import argparse

from repro import (
    AdvisorConfig,
    DiskSimulator,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    compare_candidates,
    format_query_analysis,
    format_ranking_table,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1, help="fact table scale factor")
    parser.add_argument("--disks", type=int, default=64, help="number of disks")
    parser.add_argument("--queries", type=int, default=10, help="simulated queries per class")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    schema = apb1_schema(scale=args.scale)
    workload = apb1_query_mix()
    system = SystemParameters(num_disks=args.disks)
    advisor = Warlock(
        schema, workload, system, AdvisorConfig(top_candidates=10, max_fragments=100_000)
    )

    recommendation = advisor.recommend()

    # 1. Ranked candidate list -------------------------------------------------
    print(format_ranking_table(recommendation))
    print()

    # 2. Trade-off scatter: every evaluated candidate ---------------------------
    print("I/O cost vs. response time over all evaluated candidates")
    print(f"{'fragmentation':55s} {'I/O cost [ms]':>14s} {'response [ms]':>14s}")
    for candidate in sorted(recommendation.evaluated, key=lambda c: c.io_cost_ms):
        print(
            f"{candidate.label:55s} {candidate.io_cost_ms:14,.0f} "
            f"{candidate.response_time_ms:14,.0f}"
        )
    print()

    # 3. Detailed analysis of the top-3 candidates --------------------------------
    top = [ranked.candidate for ranked in recommendation.ranked[:3]]
    print(compare_candidates(top, baseline=top[0]))
    print()
    print(format_query_analysis(recommendation.best, workload))
    print()

    # 4. Validation: analytical model vs. Monte-Carlo replay -----------------------
    best = recommendation.best
    simulator = DiskSimulator(system)
    simulated = simulator.run_workload(
        best.layout,
        workload,
        best.bitmap_scheme,
        best.allocation,
        best.prefetch,
        queries_per_class=args.queries,
        seed=0,
    )
    print("Validation of the analytical model against the replay simulator")
    print(simulated.describe())
    print(
        f"  analytical: response {best.response_time_ms:,.1f} ms, "
        f"I/O cost {best.io_cost_ms:,.1f} ms"
    )
    response_error = (
        abs(simulated.weighted_response_ms - best.response_time_ms)
        / max(simulated.weighted_response_ms, 1e-9)
    )
    busy_error = (
        abs(simulated.weighted_busy_ms - best.io_cost_ms)
        / max(simulated.weighted_busy_ms, 1e-9)
    )
    print(
        f"  relative deviation: response {response_error:.1%}, I/O cost {busy_error:.1%}"
    )


if __name__ == "__main__":
    main()
