#!/usr/bin/env python3
"""An interactive what-if session, the way the paper demonstrates WARLOCK.

One :class:`repro.AdvisorSession` compiles the warehouse once and then serves
a chain of incremental edits — fewer disks, skewed data, a drill-heavy query
mix — each derived with ``session.with_delta(...)`` so the shared evaluation
cache carries every result the edit does not invalidate.  A progress meter
and a cooperative cancel token show the serving-side controls.

Run with::

    python examples/session_what_if.py [--dataset apb1|retail] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    AdvisorConfig,
    AdvisorSession,
    EngineOptions,
    SystemParameters,
    TuneRequest,
    apb1_query_mix,
    apb1_schema,
    retail_query_mix,
    retail_schema,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=["apb1", "retail"], default="apb1")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--disks", type=int, default=64)
    return parser.parse_args()


def progress(event) -> None:
    """A minimal stderr meter (the CLI's --progress does the same)."""
    end = "\n" if event.completed >= event.total else ""
    print(f"\r  {event.describe()}", end=end, file=sys.stderr, flush=True)


def headline(result) -> str:
    best = result.best
    return (
        f"{best.label}: response {best.response_time_ms:,.0f} ms, "
        f"I/O cost {best.io_cost_ms:,.0f} ms ({best.fragment_count:,} fragments)"
    )


def main() -> None:
    args = parse_args()
    if args.dataset == "apb1":
        schema, workload = apb1_schema(scale=args.scale), apb1_query_mix()
        skewed_dimension = "product"
    else:
        schema, workload = retail_schema(scale=args.scale), retail_query_mix()
        skewed_dimension = schema.dimensions[0].name
    system = SystemParameters(num_disks=args.disks)
    config = AdvisorConfig(max_fragments=100_000, top_candidates=5)

    # One session: inputs validated once, bitmap scheme and class matrix
    # compiled once, one shared evaluation cache for the whole what-if chain.
    session = AdvisorSession(
        schema, workload, system, config, options=EngineOptions(jobs="auto")
    )
    print(f"Session: {session.describe()}\n")

    print("Baseline recommendation:")
    base = session.recommend(on_progress=progress)
    print(f"  {headline(base)}\n")

    # Edit 1: half the disks.  Candidate keys change (the system did), but
    # every access structure is reused from the baseline sweep.
    halved = session.with_delta(disks=args.disks // 2)
    print(f"What if we had {args.disks // 2} disks?")
    print(f"  {headline(halved.recommend(on_progress=progress))}")
    print(f"  cache after the edit: {session.stats.describe()}\n")

    # Edit 2: skewed data on top of the halved system.
    skewed = halved.with_delta(skew={skewed_dimension: 0.8})
    print(f"...and {skewed_dimension!r} skewed (zipf theta 0.8)?")
    print(f"  {headline(skewed.recommend(on_progress=progress))}\n")

    # Edit 3: a drill-heavy mix — reweighting reuses every structure entry.
    heavy_class = next(iter(workload)).name
    drill = skewed.with_delta(mix_weights={heavy_class: 10.0})
    print(f"...and {heavy_class!r} weighted 10x?")
    print(f"  {headline(drill.recommend(on_progress=progress))}\n")

    # Typed requests serve front ends; every result is directly servable.
    study = drill.submit(TuneRequest(study="disks", settings=(16, 32, 64)))
    print(study.describe())
    print(f"\nFinal cache state: {session.stats.describe()}")
    print("Every recommendation above is bit-identical to a fresh advisor")
    print("built from the same edited inputs — the cache only skips work.")


if __name__ == "__main__":
    main()
