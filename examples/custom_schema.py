#!/usr/bin/env python3
"""Defining your own warehouse and fine-tuning the advisor interactively.

The demo invited attendants to "enter their own data warehouse schema and query
mix".  This example builds a telecom call-detail warehouse from scratch and
then walks through the interactive fine-tuning hooks the paper describes:

* re-weighting the query mix,
* excluding bitmap indexes to limit space,
* sweeping the number of disks,
* comparing Shared Everything and Shared Disk,
* overriding the prefetch granule.

Run with::

    python examples/custom_schema.py
"""

from __future__ import annotations

from repro import (
    AdvisorConfig,
    Dimension,
    DimensionRestriction,
    FactTable,
    Level,
    Measure,
    QueryClass,
    QueryMix,
    SkewSpec,
    StarSchema,
    SystemParameters,
    Warlock,
    compare_candidates,
    design_bitmap_scheme,
)
from repro.analysis import format_table


def build_schema() -> StarSchema:
    """A telecom call-detail-record star schema."""
    time = Dimension(
        "time",
        [Level("year", 2), Level("month", 24), Level("day", 730)],
    )
    customer = Dimension(
        "customer",
        [Level("segment", 6), Level("region", 50), Level("customer", 100_000)],
        skew=SkewSpec(theta=0.6),  # heavy callers dominate
    )
    tariff = Dimension("tariff", [Level("plan_family", 5), Level("plan", 60)])
    cell = Dimension(
        "cell",
        [Level("area", 20), Level("cell", 2_000)],
        skew=SkewSpec(theta=0.4),
    )
    calls = FactTable(
        name="call_details",
        row_count=30_000_000,
        row_size_bytes=48,
        dimension_names=("time", "customer", "tariff", "cell"),
        measures=(Measure("duration_s", 4), Measure("charge", 8)),
    )
    return StarSchema("telecom", (time, customer, tariff, cell), (calls,))


def build_workload() -> QueryMix:
    """Reporting and fraud-analysis query classes."""
    return QueryMix(
        [
            QueryClass(
                "monthly-revenue-by-plan",
                [DimensionRestriction("time", "month"), DimensionRestriction("tariff", "plan")],
                weight=30,
            ),
            QueryClass(
                "daily-traffic-by-area",
                [DimensionRestriction("time", "day"), DimensionRestriction("cell", "area")],
                weight=20,
            ),
            QueryClass(
                "segment-trend",
                [DimensionRestriction("customer", "segment"), DimensionRestriction("time", "month")],
                weight=20,
            ),
            QueryClass(
                "fraud-single-customer",
                [DimensionRestriction("customer", "customer"), DimensionRestriction("time", "day")],
                weight=10,
            ),
            QueryClass(
                "yearly-rollup",
                [DimensionRestriction("time", "year")],
                weight=20,
            ),
        ]
    )


def main() -> None:
    schema = build_schema()
    workload = build_workload()
    system = SystemParameters(num_disks=48)
    config = AdvisorConfig(top_candidates=8, max_fragments=150_000)

    print(schema.describe())
    print()

    # --- baseline recommendation -----------------------------------------------
    advisor = Warlock(schema, workload, system, config)
    recommendation = advisor.recommend()
    print(recommendation.describe())
    print()

    # --- fine-tuning 1: the DBA doubts the yearly roll-up matters ------------------
    light_rollups = workload.reweighted({"yearly-rollup": 2})
    tuned = Warlock(schema, light_rollups, system, config).recommend()
    print("After down-weighting the yearly roll-up class:")
    print(tuned.describe())
    print()

    # --- fine-tuning 2: exclude the big customer bitmap to save space ----------------
    full_scheme = design_bitmap_scheme(schema, workload)
    slim_scheme = full_scheme.without(("customer", "customer"))
    spec = recommendation.best.spec
    with_bitmaps = advisor.evaluate_spec(spec, full_scheme)
    without_bitmaps = advisor.evaluate_spec(spec, slim_scheme)
    fact_rows = schema.fact_table().row_count
    print("Bitmap space vs. query cost (excluding the customer-level bitmap):")
    print(
        format_table(
            ["scheme", "bitmap pages", "I/O cost [ms]", "response [ms]"],
            [
                [
                    "all suggested bitmaps",
                    f"{full_scheme.storage_pages(fact_rows, system.page_size_bytes):,}",
                    f"{with_bitmaps.io_cost_ms:,.0f}",
                    f"{with_bitmaps.response_time_ms:,.0f}",
                ],
                [
                    "customer bitmap excluded",
                    f"{slim_scheme.storage_pages(fact_rows, system.page_size_bytes):,}",
                    f"{without_bitmaps.io_cost_ms:,.0f}",
                    f"{without_bitmaps.response_time_ms:,.0f}",
                ],
            ],
        )
    )
    print()

    # --- fine-tuning 3: disk sweep and architecture comparison -----------------------
    print("Response time of the recommended fragmentation vs. number of disks:")
    rows = []
    for disks in (16, 32, 48, 96, 192):
        swept = Warlock(schema, workload, system.with_disks(disks), config)
        candidate = swept.evaluate_spec(spec)
        rows.append([f"{disks}", f"{candidate.response_time_ms:,.0f}", f"{candidate.io_cost_ms:,.0f}"])
    print(format_table(["disks", "response [ms]", "I/O cost [ms]"], rows))
    print()

    se_system = system.with_architecture("shared_everything")
    se_candidate = Warlock(schema, workload, se_system, config).evaluate_spec(spec)
    sd_candidate = advisor.evaluate_spec(spec)
    print("Architecture comparison for the recommended fragmentation:")
    print(
        compare_candidates(
            [sd_candidate, se_candidate],
            baseline=sd_candidate,
        )
    )
    print()

    # --- fine-tuning 4: fixed vs. auto prefetch ------------------------------------------
    fixed_system = system.with_prefetch(fact=4, bitmap=1)
    fixed_candidate = Warlock(schema, workload, fixed_system, config).evaluate_spec(spec)
    print("Prefetch granule: auto-optimized vs. fixed 4-page granule")
    print(
        format_table(
            ["prefetch", "fact pages", "bitmap pages", "response [ms]"],
            [
                [
                    "auto",
                    f"{sd_candidate.prefetch.fact_pages}",
                    f"{sd_candidate.prefetch.bitmap_pages}",
                    f"{sd_candidate.response_time_ms:,.0f}",
                ],
                [
                    "fixed (4 / 1)",
                    f"{fixed_candidate.prefetch.fact_pages}",
                    f"{fixed_candidate.prefetch.bitmap_pages}",
                    f"{fixed_candidate.response_time_ms:,.0f}",
                ],
            ],
        )
    )


if __name__ == "__main__":
    main()
