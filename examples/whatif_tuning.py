#!/usr/bin/env python3
"""What-if tuning session: affinity analysis plus systematic what-if studies.

This example reproduces, programmatically, the interactive fine-tuning session
the demonstration describes for a DBA who already has a recommendation and now
wants to understand *why* it looks the way it does and *how robust* it is:

1. rank the dimensions by workload affinity and compare the pre-selection with
   the dimensions the advisor's winner actually uses,
2. sweep the number of disks and compare Shared Everything vs. Shared Disk,
3. quantify the prefetch-granule sensitivity,
4. quantify the space/time effect of dropping the most expensive bitmap
   indexes,
5. check how a heavier reporting share would change the picture.

Run with::

    python examples/whatif_tuning.py [--dataset apb1|retail]
"""

from __future__ import annotations

import argparse

from repro import (
    AdvisorConfig,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    architecture_study,
    bitmap_exclusion_study,
    dimension_ranking,
    disk_count_study,
    prefetch_study,
    retail_query_mix,
    retail_schema,
    suggest_fragmentation_dimensions,
    workload_weight_study,
)
from repro.analysis import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=["apb1", "retail"], default="apb1")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--disks", type=int, default=64)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.dataset == "apb1":
        schema, workload = apb1_schema(scale=args.scale), apb1_query_mix()
    else:
        schema, workload = retail_schema(scale=args.scale), retail_query_mix()
    system = SystemParameters(num_disks=args.disks)
    config = AdvisorConfig(max_fragments=100_000, top_candidates=5)

    advisor = Warlock(schema, workload, system, config)
    recommendation = advisor.recommend()
    best = recommendation.best
    print(recommendation.describe())
    print()

    # 1. Affinity analysis ------------------------------------------------------
    print("Dimension affinity (workload share restricting each dimension):")
    print(
        format_table(
            ["dimension", "share"],
            [[name, f"{share:.1%}"] for name, share in dimension_ranking(schema, workload)],
        )
    )
    suggestion = suggest_fragmentation_dimensions(schema, workload, max_dimensions=3)
    winner_dimensions = list(best.spec.dimensions)
    print(f"\nPre-selected fragmentation dimensions: {', '.join(suggestion)}")
    print(f"Dimensions used by the advisor's winner: {', '.join(winner_dimensions)}")
    print()

    # 2. Disk sweep and architecture ----------------------------------------------
    print(disk_count_study(schema, workload, system, best.spec, config=config).format())
    print()
    print(architecture_study(schema, workload, system, best.spec, config=config).format())
    print()

    # 3. Prefetch sensitivity ---------------------------------------------------------
    print(prefetch_study(schema, workload, system, best.spec, config=config).format())
    print()

    # 4. Bitmap exclusion ---------------------------------------------------------------
    largest_indexes = sorted(
        best.bitmap_scheme,
        key=lambda index: index.storage_bits_per_row,
        reverse=True,
    )[:2]
    exclusions = [(), tuple((index.dimension, index.level) for index in largest_indexes)]
    print(
        bitmap_exclusion_study(
            schema, workload, system, best.spec, exclusions=exclusions, config=config
        ).format()
    )
    print()

    # 5. Workload shift ------------------------------------------------------------------
    heaviest = max(workload, key=lambda qc: qc.weight)
    print(
        workload_weight_study(
            schema,
            workload,
            system,
            best.spec,
            reweightings={f"{heaviest.name} x5": {heaviest.name: heaviest.weight * 5}},
            config=config,
        ).format()
    )


if __name__ == "__main__":
    main()
