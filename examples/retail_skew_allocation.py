#!/usr/bin/env python3
"""Skewed retail warehouse: round-robin vs. greedy size-based allocation.

The retail schema ships with a strongly skewed item dimension (best-sellers
dominate the sales fact table).  This example shows the part of WARLOCK that
reacts to skew:

* fragment sizes become uneven once a skewed attribute is a fragmentation
  attribute,
* the logical round-robin allocation then leaves disks unevenly occupied,
* the greedy size-based scheme restores occupancy balance,
* the disk access profile per query class shows how the imbalance would hit
  individual queries.

Run with::

    python examples/retail_skew_allocation.py [--theta 0.8] [--disks 32]
"""

from __future__ import annotations

import argparse

from repro import (
    FragmentationSpec,
    SystemParameters,
    build_layout,
    design_bitmap_scheme,
    disk_access_profile,
    greedy_size_allocation,
    retail_query_mix,
    retail_schema,
    round_robin_allocation,
)
from repro.analysis import format_table
from repro.core import AdvisorConfig, Warlock


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--theta", type=float, default=0.8, help="zipf theta of the item dimension")
    parser.add_argument("--scale", type=float, default=0.05, help="fact table scale factor")
    parser.add_argument("--disks", type=int, default=32, help="number of disks")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    schema = retail_schema(scale=args.scale, item_skew_theta=args.theta)
    workload = retail_query_mix()
    system = SystemParameters(num_disks=args.disks)
    scheme = design_bitmap_scheme(schema, workload)

    # A fragmentation that includes the skewed item dimension (by category).
    spec = FragmentationSpec.of(("date", "month"), ("item", "category"))
    layout = build_layout(schema, spec)
    print(layout.describe())
    print()

    # --- occupancy balance of the two allocation schemes ----------------------
    round_robin = round_robin_allocation(layout, system, scheme)
    greedy = greedy_size_allocation(layout, system, scheme)
    rows = []
    for allocation in (round_robin, greedy):
        summary = allocation.occupancy_summary()
        rows.append(
            [
                allocation.scheme,
                f"{summary['total_pages']:,.0f}",
                f"{summary['min_occupancy_pages']:,.0f}",
                f"{summary['max_occupancy_pages']:,.0f}",
                f"{summary['occupancy_cv']:.4f}",
                f"{summary['occupancy_imbalance']:.3f}",
            ]
        )
    print("Disk occupancy under data skew (item dimension, zipf theta = %.2f)" % args.theta)
    print(
        format_table(
            ["allocation", "total pages", "min/disk", "max/disk", "CV", "max/mean"],
            rows,
        )
    )
    print()

    # --- per-query-class disk access profiles -----------------------------------
    advisor = Warlock(schema, workload, system, AdvisorConfig(max_fragments=200_000))
    candidate = advisor.evaluate_spec(spec, scheme)
    print("Disk access profiles (greedy allocation) per query class")
    for query_class in workload:
        profile = disk_access_profile(candidate, query_class, samples=10, seed=0)
        print(f"  {profile.describe()}")
    print()

    # --- what WARLOCK itself would choose ------------------------------------------
    recommendation = advisor.recommend()
    print("WARLOCK's own recommendation for the retail warehouse:")
    print(recommendation.describe())


if __name__ == "__main__":
    main()
