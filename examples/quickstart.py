#!/usr/bin/env python3
"""Quickstart: recommend a disk allocation for an APB-1-style warehouse.

This is the minimal end-to-end use of the library — the programmatic
counterpart of walking through the WARLOCK demo once:

1. describe the star schema, the DBS & disk parameters and the query mix
   (input layer),
2. run the advisor (prediction layer),
3. print the ranked fragmentation candidates and the detailed analysis of the
   winner (analysis/output layer).

Run with::

    python examples/quickstart.py
"""

from repro import (
    AdvisorConfig,
    SystemParameters,
    Warlock,
    apb1_query_mix,
    apb1_schema,
    format_allocation_report,
)


def main() -> None:
    # --- input layer ---------------------------------------------------------
    schema = apb1_schema(scale=0.1)          # ~2.5 M fact rows
    workload = apb1_query_mix()              # 8 weighted star-query classes
    system = SystemParameters(num_disks=64)  # 64 disks, 8 KB pages, auto prefetch

    print(schema.describe())
    print()
    print(workload.describe())
    print()
    print(f"System: {system.describe()}")
    print()

    # --- prediction layer ------------------------------------------------------
    advisor = Warlock(
        schema,
        workload,
        system,
        AdvisorConfig(top_candidates=10, max_fragments=100_000),
    )
    recommendation = advisor.recommend()

    # --- analysis / output layer --------------------------------------------------
    print(recommendation.describe())
    print()
    print(advisor.analyze(recommendation.best))
    print()
    print(format_allocation_report(recommendation.best))


if __name__ == "__main__":
    main()
